//! Full selection cost: compressive pipeline vs the stock argmax.
//!
//! The stock argmax is O(N) over readings; CSS pays the correlation over
//! the pattern grid. This bench quantifies the CPU price of the 2.3×
//! air-time saving.

use bench::bench_patterns;
use criterion::{criterion_group, criterion_main, Criterion};
use css::selection::{CompressiveSelection, CssConfig};
use geom::rng::sub_rng;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy};
use std::hint::black_box;
use talon_channel::{Environment, Link};

fn bench_selection(c: &mut Criterion) {
    let (patterns, dut, fixed) = bench_patterns(42);
    let link = Link::new(Environment::lab());
    let mut rng = sub_rng(42, "bench-selection");
    let full = dut.codebook.sweep_order();
    let full_sweep = link.sweep(&mut rng, &dut, &full, &fixed);
    let subset: Vec<_> = full_sweep.iter().take(14).copied().collect();

    c.bench_function("select/ssw_argmax_34", |b| {
        b.iter(|| black_box(MaxSnrPolicy.select(black_box(&full_sweep))))
    });

    let mut css = CompressiveSelection::new(patterns, CssConfig::paper_default(), 42);
    c.bench_function("select/css_14_of_34", |b| {
        b.iter(|| black_box(css.select_from_readings(black_box(&subset))))
    });

    c.bench_function("select/css_probe_draw", |b| {
        b.iter(|| black_box(css.probe_sectors(black_box(&full))))
    });
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
