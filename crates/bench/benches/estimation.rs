//! Angle-of-arrival estimation cost vs probe count (the online cost of
//! Eqs. 2/3/5, which a firmware implementation would pay once per sweep),
//! plus grid-size scaling of the fused kernel and a fused-vs-reference
//! comparison (the reference is the retained pre-optimization naive path).

use bench::bench_patterns;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use css::estimator::reference::ReferenceEstimator;
use css::estimator::{CompressiveEstimator, CorrelationMode};
use geom::rng::sub_rng;
use geom::sphere::{GridSpec, SphericalGrid};
use std::hint::black_box;
use talon_channel::{Environment, Link};

fn bench_estimation(c: &mut Criterion) {
    let (patterns, dut, fixed) = bench_patterns(42);
    let link = Link::new(Environment::lab());
    let mut rng = sub_rng(42, "bench-estimation");
    let full = dut.codebook.sweep_order();
    let full_sweep = link.sweep(&mut rng, &dut, &full, &fixed);

    let mut group = c.benchmark_group("estimate");
    for &m in &[6usize, 14, 34] {
        let readings: Vec<_> = full_sweep.iter().take(m).copied().collect();
        for mode in [CorrelationMode::SnrOnly, CorrelationMode::JointSnrRssi] {
            let est = CompressiveEstimator::new(&patterns, mode);
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), m),
                &readings,
                |b, r| b.iter(|| black_box(est.estimate(black_box(r)))),
            );
        }
    }
    group.finish();

    // Fused vs retained naive reference at the paper's operating point.
    let readings14: Vec<_> = full_sweep.iter().take(14).copied().collect();
    let mut group = c.benchmark_group("estimate_kernel");
    let fused = CompressiveEstimator::new(&patterns, CorrelationMode::JointSnrRssi);
    group.bench_function("fused_m14", |b| {
        b.iter(|| black_box(fused.estimate(black_box(&readings14))))
    });
    let naive = ReferenceEstimator::new(&patterns, CorrelationMode::JointSnrRssi);
    group.bench_function("reference_m14", |b| {
        b.iter(|| black_box(naive.estimate(black_box(&readings14))))
    });
    group.finish();

    // Grid scaling: the same M=14 estimate over increasingly fine grids
    // (the kernel is O(grid × M); the paper-scale 3-D scan is ~1010 cells).
    let mut group = c.benchmark_group("estimate_grid");
    for &(label, az_step, el_step) in &[
        ("100pt", 7.5, 10.8),
        ("404pt", 1.8, 10.8),
        ("1010pt", 1.8, 3.6),
    ] {
        let grid = SphericalGrid::new(
            GridSpec::new(-90.0, 90.0, az_step),
            GridSpec::new(0.0, 32.4, el_step),
        );
        let fine = patterns.resample(&grid);
        let est = CompressiveEstimator::new(&fine, CorrelationMode::JointSnrRssi);
        group.bench_with_input(BenchmarkId::new("m14", label), &readings14, |b, r| {
            b.iter(|| black_box(est.estimate(black_box(r))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
