//! Angle-of-arrival estimation cost vs probe count (the online cost of
//! Eqs. 2/3/5, which a firmware implementation would pay once per sweep).

use bench::bench_patterns;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use css::estimator::{CompressiveEstimator, CorrelationMode};
use geom::rng::sub_rng;
use std::hint::black_box;
use talon_channel::{Environment, Link};

fn bench_estimation(c: &mut Criterion) {
    let (patterns, dut, fixed) = bench_patterns(42);
    let link = Link::new(Environment::lab());
    let mut rng = sub_rng(42, "bench-estimation");
    let full = dut.codebook.sweep_order();
    let full_sweep = link.sweep(&mut rng, &dut, &full, &fixed);

    let mut group = c.benchmark_group("estimate");
    for &m in &[6usize, 14, 34] {
        let readings: Vec<_> = full_sweep.iter().take(m).copied().collect();
        for mode in [CorrelationMode::SnrOnly, CorrelationMode::JointSnrRssi] {
            let est = CompressiveEstimator::new(&patterns, mode);
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), m),
                &readings,
                |b, r| b.iter(|| black_box(est.estimate(black_box(r)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
