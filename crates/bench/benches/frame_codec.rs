//! Frame encode/decode and CRC throughput.
//!
//! These paths run once per SSW frame (every 18 µs during a sweep), so
//! they must be far below that budget.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mac80211ad::addr::MacAddr;
use mac80211ad::crc::crc32;
use mac80211ad::fields::{encode_snr, SswFeedbackField, SswField, SweepDirection};
use mac80211ad::frames::{Frame, SswFrame};
use std::hint::black_box;
use talon_array::SectorId;

fn sample_frame() -> Frame {
    Frame::Ssw(SswFrame {
        ra: MacAddr::device(2),
        ta: MacAddr::device(1),
        ssw: SswField {
            direction: SweepDirection::Initiator,
            cdown: 17,
            sector_id: SectorId(18),
            dmg_antenna_id: 0,
            rxss_length: 0,
        },
        feedback: SswFeedbackField {
            sector_select: SectorId(24),
            dmg_antenna_select: 0,
            snr_report: encode_snr(10.5),
            poll_required: false,
        },
    })
}

fn bench_codec(c: &mut Criterion) {
    let frame = sample_frame();
    let wire = frame.encode();

    c.bench_function("frame/encode_ssw", |b| {
        b.iter(|| black_box(black_box(&frame).encode()))
    });
    c.bench_function("frame/decode_ssw", |b| {
        b.iter(|| black_box(Frame::decode(black_box(&wire))))
    });

    let payload = vec![0xA5u8; 1024];
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("1KiB", |b| b.iter(|| black_box(crc32(black_box(&payload)))));
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
