//! Property-based tests for the firmware emulation.

use proptest::prelude::*;
use talon_array::SectorId;
use wil6210::memmap::{MemError, MemoryMap, Region};
use wil6210::registers::{offsets, CsrBlock};
use wil6210::ringbuf::{RingBuffer, SweepEntry};

proptest! {
    #[test]
    fn every_mapped_address_resolves_consistently(
        region_idx in 0usize..4,
        offset_frac in 0.0f64..1.0,
        via_high in any::<bool>(),
    ) {
        let region = Region::ALL[region_idx];
        let offset = (offset_frac * (region.size() - 1) as f64) as u32;
        let base = if via_high { region.high_base() } else { region.low_base() };
        let m = MemoryMap::new();
        let (r, off, high) = m.resolve(base + offset).unwrap();
        prop_assert_eq!(r, region);
        prop_assert_eq!(off, offset);
        prop_assert_eq!(high, via_high);
    }

    #[test]
    fn data_written_high_reads_back_low(
        region_idx in 0usize..4,
        data in prop::collection::vec(any::<u8>(), 1..32),
        offset_frac in 0.0f64..0.9,
    ) {
        let region = Region::ALL[region_idx];
        let max_off = region.size() as usize - data.len();
        let offset = (offset_frac * max_off as f64) as u32;
        let mut m = MemoryMap::new();
        // High writes always succeed.
        m.write(region.high_base() + offset, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        m.read(region.low_base() + offset, &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn low_code_writes_always_fail(
        offset_frac in 0.0f64..0.9,
        data in prop::collection::vec(any::<u8>(), 1..16),
        code_region in prop::sample::select(vec![Region::UcodeCode, Region::FirmwareCode]),
    ) {
        let max_off = code_region.size() as usize - data.len();
        let offset = (offset_frac * max_off as f64) as u32;
        let mut m = MemoryMap::new();
        prop_assert!(matches!(
            m.write(code_region.low_base() + offset, &data),
            Err(MemError::WriteProtected(_))
        ));
    }

    #[test]
    fn ring_buffer_keeps_the_newest_entries(
        capacity in 1usize..64,
        pushes in 1usize..200,
    ) {
        let rb = RingBuffer::new(capacity);
        for i in 0..pushes {
            rb.push(SweepEntry {
                sweep_id: i as u64,
                sector: SectorId((i % 34 + 1) as u8),
                snr_db: 0.0,
                rssi_dbm: -60.0,
            });
        }
        let out = rb.drain();
        prop_assert_eq!(out.len(), pushes.min(capacity));
        // FIFO over the surviving window: strictly increasing sweep ids
        // ending at the last push.
        prop_assert!(out.windows(2).all(|w| w[0].sweep_id + 1 == w[1].sweep_id));
        prop_assert_eq!(out.last().unwrap().sweep_id, pushes as u64 - 1);
        prop_assert_eq!(rb.overwritten(), pushes.saturating_sub(capacity) as u64);
    }

    #[test]
    fn csr_mask_and_cause_interact_correctly(
        cause_bits in 0u32..4,
        mask_bits in 0u32..4,
    ) {
        let csr = CsrBlock::new();
        csr.write(offsets::INT_MASK, mask_bits).unwrap();
        if cause_bits != 0 {
            csr.fw_sweep_complete(1, 1, cause_bits & 2 != 0);
        }
        let effective = csr.read(offsets::INT_CAUSE).unwrap() & !mask_bits;
        prop_assert_eq!(csr.irq_asserted(), effective != 0);
        // Clearing everything always deasserts.
        csr.write(offsets::INT_CAUSE, u32::MAX).unwrap();
        prop_assert!(!csr.irq_asserted());
    }
}
