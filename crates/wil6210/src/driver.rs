//! The user-space driver facade.
//!
//! The paper ports LEDE to the router and extends the `wil6210` driver so
//! user space can (a) operate the chip as access point, station or monitor,
//! (b) read the exported measurements, and (c) send the custom WMI
//! commands (§3.1, §3.3, §3.4). [`Wil6210Driver`] is that surface.
//!
//! Sweep-completion events are delivered over a `crossbeam` channel so an
//! experiment-control thread (the paper's Python scripts over ssh) can
//! react to fresh measurements without polling.

use crate::firmware::Qca9500Firmware;
use crate::ringbuf::SweepEntry;
use crate::wmi::{WmiCommand, WmiError, WmiReply};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use talon_array::SectorId;
use talon_channel::SweepReading;

/// Chip operation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverMode {
    /// Access point.
    AccessPoint,
    /// Managed station.
    Station,
    /// Passive monitor.
    Monitor,
}

/// Event notifications from the firmware to user space.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverEvent {
    /// A sector sweep finished; `entries` measurements were exported.
    SweepComplete {
        /// The firmware's sweep counter value.
        sweep_id: u64,
        /// Number of measurements exported for this sweep.
        entries: usize,
        /// The sector the firmware fed back (stock or overridden).
        selected: Option<SectorId>,
    },
}

/// User-space handle to one device's firmware.
pub struct Wil6210Driver {
    firmware: Arc<Qca9500Firmware>,
    mode: DriverMode,
    events_tx: Sender<DriverEvent>,
    events_rx: Receiver<DriverEvent>,
}

impl Wil6210Driver {
    /// Loads the driver against a firmware instance.
    pub fn new(firmware: Arc<Qca9500Firmware>) -> Self {
        let (events_tx, events_rx) = unbounded();
        Wil6210Driver {
            firmware,
            mode: DriverMode::Station,
            events_tx,
            events_rx,
        }
    }

    /// The underlying firmware (e.g. to hand to an SLS runner as policy).
    pub fn firmware(&self) -> &Arc<Qca9500Firmware> {
        &self.firmware
    }

    /// Current operation mode.
    pub fn mode(&self) -> DriverMode {
        self.mode
    }

    /// Switches the operation mode.
    pub fn set_mode(&mut self, mode: DriverMode) {
        self.mode = mode;
    }

    /// Sends a WMI command to the firmware.
    pub fn wmi(&self, cmd: &WmiCommand) -> Result<WmiReply, WmiError> {
        self.firmware.handle_wmi(cmd)
    }

    /// Drains the exported measurements (the paper's "read from user space
    /// using our modified driver"). Clears the ring-pending counter.
    pub fn read_sweep_info(&self) -> Vec<SweepEntry> {
        obs::counter("wil.driver.reads").inc();
        let entries = self.firmware.ring().drain();
        self.firmware.csr().fw_set_ring_pending(0);
        entries
    }

    /// Access to the chip's register block (debugfs-style polling).
    pub fn csr(&self) -> std::sync::Arc<crate::registers::CsrBlock> {
        self.firmware.csr()
    }

    /// A receiver of driver events for an experiment-control thread.
    pub fn events(&self) -> Receiver<DriverEvent> {
        self.events_rx.clone()
    }

    /// Called by the MAC integration after the firmware processed a sweep,
    /// to notify user space. (In the real system this is the driver
    /// interrupt path; our SLS runner calls it explicitly.)
    pub fn notify_sweep(&self, readings: &[SweepReading], selected: Option<SectorId>) {
        let entries = readings.iter().filter(|r| r.measurement.is_some()).count();
        let _ = self.events_tx.send(DriverEvent::SweepComplete {
            sweep_id: self.firmware.current_sweep_id(),
            entries,
            selected,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac80211ad::sls::FeedbackPolicy;
    use talon_channel::Measurement;

    fn reading(sector: u8, snr: f64) -> SweepReading {
        SweepReading {
            sector: SectorId(sector),
            measurement: Some(Measurement {
                snr_db: snr,
                rssi_dbm: -58.0,
            }),
        }
    }

    #[test]
    fn driver_reads_firmware_exports() {
        let fw = Arc::new(Qca9500Firmware::patched());
        let driver = Wil6210Driver::new(Arc::clone(&fw));
        let _ = (&mut &*fw).select(&[reading(3, 4.0), reading(8, 8.0)]);
        let info = driver.read_sweep_info();
        assert_eq!(info.len(), 2);
        assert_eq!(info[1].sector, SectorId(8));
        // Second read is empty (drained).
        assert!(driver.read_sweep_info().is_empty());
    }

    #[test]
    fn wmi_roundtrip_through_driver() {
        let fw = Arc::new(Qca9500Firmware::patched());
        let driver = Wil6210Driver::new(Arc::clone(&fw));
        assert_eq!(
            driver.wmi(&WmiCommand::SetSectorOverride(SectorId(21))),
            Ok(WmiReply::Ok)
        );
        assert_eq!(fw.sector_override(), Some(SectorId(21)));
    }

    #[test]
    fn mode_switching() {
        let fw = Arc::new(Qca9500Firmware::patched());
        let mut driver = Wil6210Driver::new(fw);
        assert_eq!(driver.mode(), DriverMode::Station);
        driver.set_mode(DriverMode::Monitor);
        assert_eq!(driver.mode(), DriverMode::Monitor);
    }

    #[test]
    fn events_reach_a_control_thread() {
        let fw = Arc::new(Qca9500Firmware::patched());
        let driver = Wil6210Driver::new(Arc::clone(&fw));
        let rx = driver.events();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        let readings = vec![reading(1, 1.0), reading(2, 6.0)];
        let selected = (&mut &*fw).select(&readings);
        driver.notify_sweep(&readings, selected);
        let ev = handle.join().unwrap();
        assert_eq!(
            ev,
            DriverEvent::SweepComplete {
                sweep_id: 1,
                entries: 2,
                selected: Some(SectorId(2)),
            }
        );
    }
}
