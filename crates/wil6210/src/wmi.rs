//! The Wireless Module Interface (WMI) command set.
//!
//! The wil6210 driver talks to the QCA9500 firmware through WMI commands.
//! The paper adds one: "a custom Wireless Module Interface (WMI) command"
//! that switches the SSW feedback between the stock selection and a
//! user-space-chosen sector (§3.4). We model the handful of commands the
//! experiments need; unknown or malformed commands fail like the real
//! firmware would.

use serde::{Deserialize, Serialize};
use talon_array::SectorId;

/// Commands user space can send to the firmware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WmiCommand {
    /// Stock command: ask for the firmware/chip revision string.
    GetFirmwareVersion,
    /// Paper extension: force the given sector ID into all outgoing SSW
    /// feedback fields (the "1" position of the switch in Fig. 2).
    SetSectorOverride(SectorId),
    /// Paper extension: return to the stock selection algorithm (the "0"
    /// position of the switch).
    ClearSectorOverride,
    /// Paper extension: query how many measurements are pending in the
    /// ring buffer.
    GetSweepInfoCount,
    /// Paper extension (§6.1 protocol variant): restrict the device's own
    /// transmit sweep to the given probing sectors.
    SetProbeSectors(Vec<SectorId>),
    /// Paper extension: sweep the full codebook again.
    ClearProbeSectors,
}

/// Replies from the firmware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WmiReply {
    /// Command accepted, no payload.
    Ok,
    /// Firmware version string.
    FirmwareVersion(String),
    /// Pending ring-buffer entry count.
    SweepInfoCount(usize),
}

/// WMI-level errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WmiError {
    /// The override sector is not a valid Talon transmit sector.
    InvalidSector(u8),
    /// The command needs the paper's firmware patches, which are not
    /// flashed.
    PatchNotApplied,
}

impl std::fmt::Display for WmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WmiError::InvalidSector(s) => write!(f, "sector {s} is not a valid transmit sector"),
            WmiError::PatchNotApplied => write!(f, "firmware patch not applied"),
        }
    }
}

impl std::error::Error for WmiError {}

/// The firmware version the paper's analysis targets (§3.2): extracted
/// from Acer TravelMate notebooks, runs on the Talon AD7200.
pub const FIRMWARE_VERSION: &str = "3.3.3.7759";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_usefully() {
        assert!(WmiError::InvalidSector(40).to_string().contains("40"));
        assert!(WmiError::PatchNotApplied.to_string().contains("patch"));
    }

    #[test]
    fn commands_are_value_types() {
        let c = WmiCommand::SetSectorOverride(SectorId(14));
        assert_eq!(c, WmiCommand::SetSectorOverride(SectorId(14)));
        assert_ne!(c, WmiCommand::ClearSectorOverride);
    }
}
