//! The emulated QCA9500 firmware: the sweep handler of Fig. 2.
//!
//! The firmware owns the chip memory, the measurement ring buffer and the
//! sector-override switch. It implements
//! [`mac80211ad::FeedbackPolicy`], so an [`mac80211ad::SlsRunner`] drives
//! it exactly where the real sweep handler sits:
//!
//! * `select` is the "Receive SSW Frames → Select Best Sector → Set SSW
//!   Feedback Field" path. With the export patch flashed, every received
//!   probe is copied into the ring buffer (white box of Fig. 2); with the
//!   override patch flashed *and armed*, the returned sector is the
//!   user-space choice instead of the stock argmax (the 0/1 switch).
//! * `probe_sectors` is the transmit path; user space may restrict it to a
//!   probing subset via WMI.
//!
//! All hook state sits behind `parking_lot` locks so a user-space agent
//! thread can drive WMI while the MAC state machine runs.

use crate::memmap::MemoryMap;
use crate::patch::{flash_paper_patches, Patch};
use crate::registers::{fw_status, CsrBlock};
use crate::ringbuf::{RingBuffer, SweepEntry};
use crate::wmi::{WmiCommand, WmiError, WmiReply, FIRMWARE_VERSION};
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use talon_array::SectorId;
use talon_channel::SweepReading;

/// The emulated firmware instance of one device.
pub struct Qca9500Firmware {
    /// Chip memory (patched or stock).
    mem: Mutex<MemoryMap>,
    /// The measurement ring buffer (shared with user space).
    ring: Arc<RingBuffer>,
    /// The override switch state (None = stock algorithm).
    sector_override: Mutex<Option<SectorId>>,
    /// Optional probing-subset restriction for our own sweeps.
    probe_override: Mutex<Option<Vec<SectorId>>>,
    /// Monotonic sweep counter.
    sweep_counter: AtomicU64,
    /// The host-visible control/status registers.
    csr: Arc<CsrBlock>,
}

impl Default for Qca9500Firmware {
    fn default() -> Self {
        Self::stock()
    }
}

impl Qca9500Firmware {
    /// Boots a stock (unpatched) firmware.
    pub fn stock() -> Self {
        let csr = Arc::new(CsrBlock::new());
        csr.fw_set_status(fw_status::RUNNING);
        Qca9500Firmware {
            mem: Mutex::new(MemoryMap::new()),
            ring: Arc::new(RingBuffer::new(RingBuffer::FIRMWARE_CAPACITY)),
            sector_override: Mutex::new(None),
            probe_override: Mutex::new(None),
            sweep_counter: AtomicU64::new(0),
            csr,
        }
    }

    /// Boots a firmware with the paper's patches already flashed.
    pub fn patched() -> Self {
        let fw = Self::stock();
        fw.flash_patches().expect("patching fresh memory succeeds");
        fw
    }

    /// Flashes the paper's two patches into chip memory.
    pub fn flash_patches(&self) -> Result<(), crate::memmap::MemError> {
        flash_paper_patches(&mut self.mem.lock())?;
        self.csr.fw_set_status(fw_status::PATCHED);
        Ok(())
    }

    /// The host-visible register block.
    pub fn csr(&self) -> Arc<CsrBlock> {
        Arc::clone(&self.csr)
    }

    /// Whether the ring-buffer export patch is active.
    pub fn export_patch_active(&self) -> bool {
        Patch::sweep_info_export().is_applied(&self.mem.lock())
    }

    /// Whether the sector-override patch is active.
    pub fn override_patch_active(&self) -> bool {
        Patch::sector_override().is_applied(&self.mem.lock())
    }

    /// The ring buffer handle (user space drains it through the driver).
    pub fn ring(&self) -> Arc<RingBuffer> {
        Arc::clone(&self.ring)
    }

    /// Handles a WMI command from the driver.
    pub fn handle_wmi(&self, cmd: &WmiCommand) -> Result<WmiReply, WmiError> {
        obs::counter("wil.wmi.commands").inc();
        match cmd {
            WmiCommand::GetFirmwareVersion => {
                Ok(WmiReply::FirmwareVersion(FIRMWARE_VERSION.into()))
            }
            WmiCommand::SetSectorOverride(id) => {
                if !self.override_patch_active() {
                    return Err(WmiError::PatchNotApplied);
                }
                if !id.is_talon_tx() {
                    return Err(WmiError::InvalidSector(id.raw()));
                }
                *self.sector_override.lock() = Some(*id);
                Ok(WmiReply::Ok)
            }
            WmiCommand::ClearSectorOverride => {
                if !self.override_patch_active() {
                    return Err(WmiError::PatchNotApplied);
                }
                *self.sector_override.lock() = None;
                Ok(WmiReply::Ok)
            }
            WmiCommand::GetSweepInfoCount => {
                if !self.export_patch_active() {
                    return Err(WmiError::PatchNotApplied);
                }
                Ok(WmiReply::SweepInfoCount(self.ring.len()))
            }
            WmiCommand::SetProbeSectors(ids) => {
                if !self.override_patch_active() {
                    return Err(WmiError::PatchNotApplied);
                }
                if let Some(bad) = ids.iter().find(|id| !id.is_talon_tx()) {
                    return Err(WmiError::InvalidSector(bad.raw()));
                }
                *self.probe_override.lock() = Some(ids.clone());
                Ok(WmiReply::Ok)
            }
            WmiCommand::ClearProbeSectors => {
                if !self.override_patch_active() {
                    return Err(WmiError::PatchNotApplied);
                }
                *self.probe_override.lock() = None;
                Ok(WmiReply::Ok)
            }
        }
    }

    /// The current override, if armed.
    pub fn sector_override(&self) -> Option<SectorId> {
        *self.sector_override.lock()
    }

    /// ID of the sweep currently being processed.
    pub fn current_sweep_id(&self) -> u64 {
        self.sweep_counter.load(Ordering::SeqCst)
    }
}

impl FeedbackPolicy for &Qca9500Firmware {
    fn probe_sectors(&mut self, full_sweep: &[SectorId]) -> Vec<SectorId> {
        match &*self.probe_override.lock() {
            Some(ids) => ids.clone(),
            None => full_sweep.to_vec(),
        }
    }

    fn select(&mut self, readings: &[SweepReading]) -> Option<SectorId> {
        let mut span = obs::sink_active().then(|| obs::span("wil.sweep"));
        obs::counter("wil.sweeps").inc();
        let sweep_id = self.sweep_counter.fetch_add(1, Ordering::SeqCst) + 1;
        // Export hook (white box "Access Sector Information" of Fig. 2).
        let mut exported = 0u64;
        if self.export_patch_active() {
            for r in readings {
                if let Some(m) = r.measurement {
                    self.ring.push(SweepEntry {
                        sweep_id,
                        sector: r.sector,
                        snr_db: m.snr_db,
                        rssi_dbm: m.rssi_dbm,
                    });
                    exported += 1;
                }
            }
            // A gap between what was swept and what reached user space
            // means the compressive estimator will see fewer probes than
            // the schedule paid airtime for.
            if (exported as usize) < readings.len() {
                obs::health::anomaly(
                    "export_gap",
                    &[
                        ("swept", readings.len() as f64),
                        ("exported", exported as f64),
                        ("sweep_id", sweep_id as f64),
                    ],
                );
            }
        }
        if let Some(span) = &mut span {
            span.field("sweep_id", sweep_id as f64);
            span.field("exported", exported as f64);
        }
        // Raise the sweep-complete interrupt and refresh the counters the
        // host polls.
        let high_water = self.ring.len() * 4 >= RingBuffer::FIRMWARE_CAPACITY * 3;
        self.csr
            .fw_sweep_complete(sweep_id, self.ring.len(), high_water);
        // Override switch (white box "Set Sector ID" / "Enable Sector
        // Selection" of Fig. 2).
        if self.override_patch_active() {
            if let Some(forced) = *self.sector_override.lock() {
                return Some(forced);
            }
        }
        // Stock path: Eq. 1 argmax.
        MaxSnrPolicy.select(readings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use talon_channel::Measurement;

    fn reading(sector: u8, snr: f64) -> SweepReading {
        SweepReading {
            sector: SectorId(sector),
            measurement: Some(Measurement {
                snr_db: snr,
                rssi_dbm: -60.0,
            }),
        }
    }

    #[test]
    fn stock_firmware_rejects_patch_commands() {
        let fw = Qca9500Firmware::stock();
        assert_eq!(
            fw.handle_wmi(&WmiCommand::SetSectorOverride(SectorId(5))),
            Err(WmiError::PatchNotApplied)
        );
        assert_eq!(
            fw.handle_wmi(&WmiCommand::GetSweepInfoCount),
            Err(WmiError::PatchNotApplied)
        );
        // Stock commands still work.
        assert_eq!(
            fw.handle_wmi(&WmiCommand::GetFirmwareVersion),
            Ok(WmiReply::FirmwareVersion("3.3.3.7759".into()))
        );
    }

    #[test]
    fn stock_select_is_argmax_and_exports_nothing() {
        let fw = Qca9500Firmware::stock();
        let readings = vec![reading(1, 2.0), reading(7, 9.5), reading(20, 4.0)];
        let sel = (&mut &fw).select(&readings);
        assert_eq!(sel, Some(SectorId(7)));
        assert!(fw.ring().is_empty(), "no export without the patch");
    }

    #[test]
    fn patched_select_exports_to_ring_buffer() {
        let fw = Qca9500Firmware::patched();
        let readings = vec![reading(1, 2.0), reading(7, 9.5)];
        let _ = (&mut &fw).select(&readings);
        let entries = fw.ring().drain();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].sweep_id, 1);
        assert_eq!(entries[1].sector, SectorId(7));
        assert_eq!(entries[1].snr_db, 9.5);
    }

    #[test]
    fn override_switch_controls_selection() {
        let fw = Qca9500Firmware::patched();
        fw.handle_wmi(&WmiCommand::SetSectorOverride(SectorId(14)))
            .unwrap();
        let readings = vec![reading(7, 9.5)];
        assert_eq!((&mut &fw).select(&readings), Some(SectorId(14)));
        fw.handle_wmi(&WmiCommand::ClearSectorOverride).unwrap();
        assert_eq!((&mut &fw).select(&readings), Some(SectorId(7)));
    }

    #[test]
    fn invalid_override_sector_is_rejected() {
        let fw = Qca9500Firmware::patched();
        assert_eq!(
            fw.handle_wmi(&WmiCommand::SetSectorOverride(SectorId(40))),
            Err(WmiError::InvalidSector(40))
        );
        assert_eq!(fw.sector_override(), None);
    }

    #[test]
    fn probe_override_restricts_own_sweep() {
        let fw = Qca9500Firmware::patched();
        let subset = vec![SectorId(2), SectorId(9), SectorId(61)];
        fw.handle_wmi(&WmiCommand::SetProbeSectors(subset.clone()))
            .unwrap();
        let full: Vec<SectorId> = (1..=31).map(SectorId).collect();
        assert_eq!((&mut &fw).probe_sectors(&full), subset);
        fw.handle_wmi(&WmiCommand::ClearProbeSectors).unwrap();
        assert_eq!((&mut &fw).probe_sectors(&full), full);
    }

    #[test]
    fn sweep_counter_increments_per_select() {
        let fw = Qca9500Firmware::patched();
        assert_eq!(fw.current_sweep_id(), 0);
        let _ = (&mut &fw).select(&[reading(1, 1.0)]);
        let _ = (&mut &fw).select(&[reading(1, 1.0)]);
        assert_eq!(fw.current_sweep_id(), 2);
        let e = fw.ring().drain();
        assert_eq!(e[0].sweep_id, 1);
        assert_eq!(e[1].sweep_id, 2);
    }

    #[test]
    fn csr_reflects_firmware_lifecycle_and_sweeps() {
        use crate::registers::{fw_status, irq, offsets};
        let fw = Qca9500Firmware::stock();
        let csr = fw.csr();
        assert_eq!(csr.read(offsets::FW_STATUS), Ok(fw_status::RUNNING));
        fw.flash_patches().unwrap();
        assert_eq!(csr.read(offsets::FW_STATUS), Ok(fw_status::PATCHED));
        assert!(!csr.irq_asserted());
        let _ = (&mut &fw).select(&[reading(1, 2.0), reading(2, 6.0)]);
        assert!(csr.irq_asserted(), "sweep-complete interrupt raised");
        assert_eq!(csr.read(offsets::SWEEP_COUNT), Ok(1));
        assert_eq!(csr.read(offsets::RING_PENDING), Ok(2));
        csr.write(offsets::INT_CAUSE, irq::SWEEP_COMPLETE).unwrap();
        assert!(!csr.irq_asserted());
    }

    #[test]
    fn sweep_info_count_via_wmi() {
        let fw = Qca9500Firmware::patched();
        let _ = (&mut &fw).select(&[reading(1, 1.0), reading(2, 2.0)]);
        assert_eq!(
            fw.handle_wmi(&WmiCommand::GetSweepInfoCount),
            Ok(WmiReply::SweepInfoCount(2))
        );
    }
}
