//! The measurement ring buffer (§3.3).
//!
//! "We modified the firmware to extract both measurements for each sector
//! sweep into a ring buffer that we can read from user space using our
//! modified driver."
//!
//! [`RingBuffer`] is that structure: a bounded ring of [`SweepEntry`]
//! records, written by the (emulated) ucode on every received SSW frame and
//! drained from user space. When full, the oldest entries are overwritten
//! — real firmware cannot block on a slow reader.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use talon_array::SectorId;

/// One exported measurement record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepEntry {
    /// Monotonic sweep counter (which sweep this probe belonged to).
    pub sweep_id: u64,
    /// The transmit sector the peer probed.
    pub sector: SectorId,
    /// Reported SNR in dB (quantized per the firmware's format).
    pub snr_db: f64,
    /// Reported RSSI in dBm.
    pub rssi_dbm: f64,
}

/// A bounded, overwrite-on-full ring buffer with interior mutability, so
/// the "firmware" writer and the "user-space" reader can share it.
#[derive(Debug)]
pub struct RingBuffer {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    entries: VecDeque<SweepEntry>,
    capacity: usize,
    overwritten: u64,
}

impl RingBuffer {
    /// The capacity used by the emulated firmware: enough for a handful of
    /// full 34-sector sweeps, mirroring the small SRAM budget of the chip.
    pub const FIRMWARE_CAPACITY: usize = 256;

    /// Creates a ring buffer with the given capacity.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity");
        RingBuffer {
            inner: Mutex::new(Inner {
                entries: VecDeque::with_capacity(capacity),
                capacity,
                overwritten: 0,
            }),
        }
    }

    /// Firmware side: pushes an entry, overwriting the oldest when full.
    pub fn push(&self, entry: SweepEntry) {
        let mut g = self.inner.lock();
        obs::counter("wil.ring.pushes").inc();
        if g.entries.len() == g.capacity {
            g.entries.pop_front();
            g.overwritten += 1;
            obs::counter("wil.ring.dropped").inc();
            obs::health::anomaly(
                "ring_overflow",
                &[
                    ("capacity", g.capacity as f64),
                    ("overwritten", g.overwritten as f64),
                    ("sweep_id", entry.sweep_id as f64),
                ],
            );
        }
        g.entries.push_back(entry);
        obs::gauge("wil.ring.occupancy").set(g.entries.len() as i64);
    }

    /// User-space side: drains all pending entries in FIFO order.
    pub fn drain(&self) -> Vec<SweepEntry> {
        let mut g = self.inner.lock();
        obs::gauge("wil.ring.occupancy").set(0);
        g.entries.drain(..).collect()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many entries have been lost to overwrites since creation.
    pub fn overwritten(&self) -> u64 {
        self.inner.lock().overwritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sweep_id: u64, sector: u8) -> SweepEntry {
        SweepEntry {
            sweep_id,
            sector: SectorId(sector),
            snr_db: 5.0,
            rssi_dbm: -60.0,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let rb = RingBuffer::new(8);
        for i in 0..5 {
            rb.push(entry(1, i as u8 + 1));
        }
        let out = rb.drain();
        assert_eq!(out.len(), 5);
        assert!(out
            .windows(2)
            .all(|w| w[0].sector.raw() < w[1].sector.raw()));
        assert!(rb.is_empty());
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let rb = RingBuffer::new(3);
        for i in 1..=5u8 {
            rb.push(entry(1, i));
        }
        assert_eq!(rb.overwritten(), 2);
        let out = rb.drain();
        let sectors: Vec<u8> = out.iter().map(|e| e.sector.raw()).collect();
        assert_eq!(sectors, vec![3, 4, 5]);
    }

    #[test]
    fn drain_resets_but_overwrite_counter_persists() {
        let rb = RingBuffer::new(2);
        rb.push(entry(1, 1));
        rb.push(entry(1, 2));
        rb.push(entry(1, 3));
        assert_eq!(rb.drain().len(), 2);
        assert_eq!(rb.len(), 0);
        assert_eq!(rb.overwritten(), 1);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let rb = Arc::new(RingBuffer::new(1024));
        let writer = {
            let rb = Arc::clone(&rb);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    rb.push(entry(i, (i % 34 + 1) as u8));
                }
            })
        };
        writer.join().unwrap();
        assert_eq!(rb.drain().len(), 500);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        RingBuffer::new(0);
    }

    #[test]
    fn overflow_drops_are_counted_in_obs() {
        let before = obs::global().snapshot().counter("wil.ring.dropped");
        let rb = RingBuffer::new(4);
        for i in 1..=10u8 {
            rb.push(entry(1, i));
        }
        assert_eq!(rb.overwritten(), 6);
        let after = obs::global().snapshot().counter("wil.ring.dropped");
        // The obs counter is process-global and other tests overflow their
        // own rings concurrently, so the delta is a lower bound.
        assert!(
            after - before >= 6,
            "wil.ring.dropped moved by {} (< 6)",
            after - before
        );
    }

    #[test]
    fn concurrent_overflow_yields_no_torn_entries() {
        use std::sync::Arc;
        // Every field of a pushed entry is derived from its sweep_id, so a
        // torn entry (fields from two different writers mixed) is
        // detectable in the drained output.
        fn derived(v: u64) -> SweepEntry {
            SweepEntry {
                sweep_id: v,
                sector: SectorId((v % 34 + 1) as u8),
                snr_db: v as f64 * 0.5,
                rssi_dbm: -1.0 - v as f64,
            }
        }
        let rb = Arc::new(RingBuffer::new(16));
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let rb = Arc::clone(&rb);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        rb.push(derived(w * 1000 + i));
                    }
                })
            })
            .collect();
        // Drain concurrently with the writers, checking consistency.
        let mut drained = 0u64;
        let mut check = |entries: Vec<SweepEntry>| {
            for e in entries {
                assert_eq!(e, derived(e.sweep_id), "torn entry {e:?}");
                drained += 1;
            }
        };
        while !writers.iter().all(std::thread::JoinHandle::is_finished) {
            check(rb.drain());
        }
        for w in writers {
            w.join().unwrap();
        }
        check(rb.drain());
        // Every push either reached a drain or was counted as dropped.
        assert_eq!(drained + rb.overwritten(), 2000);
    }
}
