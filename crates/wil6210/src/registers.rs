//! The host-visible control/status register (CSR) block.
//!
//! The real wil6210 driver drives the chip through a PCIe BAR full of
//! control/status registers: doorbells to kick the firmware, interrupt
//! cause/mask registers, and mailbox offsets. Our emulation models the
//! slice of that interface the paper's patches interact with, so the
//! driver facade reads measurement-counter state the same way the real
//! user-space tooling polls `debugfs`:
//!
//! | offset | register | semantics |
//! |---|---|---|
//! | 0x00 | `CHIP_ID`       | read-only identity (0x6210) |
//! | 0x04 | `FW_STATUS`     | 0 = halted, 1 = running, 2 = patched |
//! | 0x08 | `INT_CAUSE`     | write-1-to-clear interrupt bits |
//! | 0x0C | `INT_MASK`      | masked bits never assert |
//! | 0x10 | `SWEEP_COUNT`   | read-only: sweeps processed |
//! | 0x14 | `RING_PENDING`  | read-only: ring-buffer entries pending |
//! | 0x18 | `DOORBELL`      | write: kick the firmware mailbox |
//!
//! Interrupt bit 0 = "sweep complete", bit 1 = "ring buffer high water".

use parking_lot::Mutex;

/// Register offsets.
pub mod offsets {
    /// Read-only chip identity.
    pub const CHIP_ID: u32 = 0x00;
    /// Firmware status.
    pub const FW_STATUS: u32 = 0x04;
    /// Interrupt cause (write-1-to-clear).
    pub const INT_CAUSE: u32 = 0x08;
    /// Interrupt mask.
    pub const INT_MASK: u32 = 0x0C;
    /// Sweeps processed.
    pub const SWEEP_COUNT: u32 = 0x10;
    /// Ring-buffer entries pending.
    pub const RING_PENDING: u32 = 0x14;
    /// Mailbox doorbell.
    pub const DOORBELL: u32 = 0x18;
}

/// Interrupt bits.
pub mod irq {
    /// A sector sweep finished processing.
    pub const SWEEP_COMPLETE: u32 = 1 << 0;
    /// The ring buffer crossed its high-water mark.
    pub const RING_HIGH_WATER: u32 = 1 << 1;
}

/// The chip identity value.
pub const CHIP_ID_VALUE: u32 = 0x6210;

/// Firmware status values.
pub mod fw_status {
    /// Processor halted.
    pub const HALTED: u32 = 0;
    /// Stock firmware running.
    pub const RUNNING: u32 = 1;
    /// Patched firmware running.
    pub const PATCHED: u32 = 2;
}

/// Errors of the register block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrError {
    /// The offset is not a known register.
    UnknownRegister(u32),
    /// The register is read-only.
    ReadOnly(u32),
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::UnknownRegister(o) => write!(f, "no register at offset {o:#x}"),
            CsrError::ReadOnly(o) => write!(f, "register {o:#x} is read-only"),
        }
    }
}

impl std::error::Error for CsrError {}

#[derive(Debug, Default)]
struct CsrState {
    fw_status: u32,
    int_cause: u32,
    int_mask: u32,
    sweep_count: u32,
    ring_pending: u32,
    doorbell_rings: u32,
}

/// The emulated CSR block.
#[derive(Debug, Default)]
pub struct CsrBlock {
    state: Mutex<CsrState>,
}

impl CsrBlock {
    /// A fresh block (firmware halted).
    pub fn new() -> Self {
        CsrBlock::default()
    }

    /// Host read of a register.
    pub fn read(&self, offset: u32) -> Result<u32, CsrError> {
        let s = self.state.lock();
        match offset {
            offsets::CHIP_ID => Ok(CHIP_ID_VALUE),
            offsets::FW_STATUS => Ok(s.fw_status),
            offsets::INT_CAUSE => Ok(s.int_cause),
            offsets::INT_MASK => Ok(s.int_mask),
            offsets::SWEEP_COUNT => Ok(s.sweep_count),
            offsets::RING_PENDING => Ok(s.ring_pending),
            offsets::DOORBELL => Ok(s.doorbell_rings),
            other => Err(CsrError::UnknownRegister(other)),
        }
    }

    /// Host write to a register.
    pub fn write(&self, offset: u32, value: u32) -> Result<(), CsrError> {
        let mut s = self.state.lock();
        match offset {
            offsets::INT_CAUSE => {
                // Write-1-to-clear.
                s.int_cause &= !value;
                Ok(())
            }
            offsets::INT_MASK => {
                s.int_mask = value;
                Ok(())
            }
            offsets::DOORBELL => {
                s.doorbell_rings = s.doorbell_rings.wrapping_add(1);
                Ok(())
            }
            offsets::CHIP_ID
            | offsets::FW_STATUS
            | offsets::SWEEP_COUNT
            | offsets::RING_PENDING => Err(CsrError::ReadOnly(offset)),
            other => Err(CsrError::UnknownRegister(other)),
        }
    }

    /// Whether an (unmasked) interrupt is currently asserted.
    pub fn irq_asserted(&self) -> bool {
        let s = self.state.lock();
        s.int_cause & !s.int_mask != 0
    }

    // ---- firmware-side mutators (not host-accessible) -------------------

    /// Firmware: updates the status register.
    pub fn fw_set_status(&self, status: u32) {
        self.state.lock().fw_status = status;
    }

    /// Firmware: raises interrupt bits and updates the counters.
    pub fn fw_sweep_complete(&self, sweep_count: u64, ring_pending: usize, high_water: bool) {
        let mut s = self.state.lock();
        s.sweep_count = sweep_count as u32;
        s.ring_pending = ring_pending as u32;
        s.int_cause |= irq::SWEEP_COMPLETE;
        if high_water {
            s.int_cause |= irq::RING_HIGH_WATER;
        }
    }

    /// Firmware: refreshes the pending-entry count (after a host drain).
    pub fn fw_set_ring_pending(&self, pending: usize) {
        self.state.lock().ring_pending = pending as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_status() {
        let csr = CsrBlock::new();
        assert_eq!(csr.read(offsets::CHIP_ID), Ok(0x6210));
        assert_eq!(csr.read(offsets::FW_STATUS), Ok(fw_status::HALTED));
        csr.fw_set_status(fw_status::PATCHED);
        assert_eq!(csr.read(offsets::FW_STATUS), Ok(fw_status::PATCHED));
    }

    #[test]
    fn read_only_registers_reject_writes() {
        let csr = CsrBlock::new();
        assert_eq!(
            csr.write(offsets::CHIP_ID, 1),
            Err(CsrError::ReadOnly(0x00))
        );
        assert_eq!(
            csr.write(offsets::SWEEP_COUNT, 1),
            Err(CsrError::ReadOnly(0x10))
        );
        assert_eq!(csr.write(0x40, 0), Err(CsrError::UnknownRegister(0x40)));
        assert_eq!(csr.read(0x40), Err(CsrError::UnknownRegister(0x40)));
    }

    #[test]
    fn interrupt_cause_is_write_one_to_clear() {
        let csr = CsrBlock::new();
        csr.fw_sweep_complete(1, 34, true);
        assert!(csr.irq_asserted());
        assert_eq!(
            csr.read(offsets::INT_CAUSE).unwrap(),
            irq::SWEEP_COMPLETE | irq::RING_HIGH_WATER
        );
        // Clearing only one bit leaves the other asserted.
        csr.write(offsets::INT_CAUSE, irq::SWEEP_COMPLETE).unwrap();
        assert_eq!(csr.read(offsets::INT_CAUSE).unwrap(), irq::RING_HIGH_WATER);
        csr.write(offsets::INT_CAUSE, irq::RING_HIGH_WATER).unwrap();
        assert!(!csr.irq_asserted());
    }

    #[test]
    fn masked_interrupts_do_not_assert() {
        let csr = CsrBlock::new();
        csr.write(offsets::INT_MASK, irq::SWEEP_COMPLETE).unwrap();
        csr.fw_sweep_complete(1, 10, false);
        assert!(!csr.irq_asserted(), "masked");
        csr.write(offsets::INT_MASK, 0).unwrap();
        assert!(csr.irq_asserted(), "unmasked bit becomes visible");
    }

    #[test]
    fn counters_track_firmware_state() {
        let csr = CsrBlock::new();
        csr.fw_sweep_complete(7, 42, false);
        assert_eq!(csr.read(offsets::SWEEP_COUNT), Ok(7));
        assert_eq!(csr.read(offsets::RING_PENDING), Ok(42));
        csr.fw_set_ring_pending(0);
        assert_eq!(csr.read(offsets::RING_PENDING), Ok(0));
    }

    #[test]
    fn doorbell_counts_rings() {
        let csr = CsrBlock::new();
        csr.write(offsets::DOORBELL, 0).unwrap();
        csr.write(offsets::DOORBELL, 123).unwrap();
        assert_eq!(csr.read(offsets::DOORBELL), Ok(2));
    }
}
