//! QCA9500 / wil6210 firmware emulation with Nexmon-style patch hooks.
//!
//! The paper's implementation work (§3) is a firmware jailbreak: the Talon
//! AD7200's Wi-Fi chip runs proprietary firmware on two ARC600 cores, and
//! the authors (a) discovered that the write-protected code partitions are
//! writable through their high-address mappings, (b) patched the ucode's
//! sector sweep handler to export per-sector SNR/RSSI readings through a
//! ring buffer, and (c) added a WMI command that overrides the sector ID
//! written into SSW feedback fields.
//!
//! This crate emulates that environment faithfully enough that the rest of
//! the workspace integrates with the *same interfaces* the paper built:
//!
//! * [`memmap`] — the dual-core memory layout of Fig. 1, including the
//!   write-protection rules and high-address remapping that make patching
//!   possible.
//! * [`patch`] — applying Nexmon-style patches to the memory map (the
//!   emulated equivalent of flashing a patched firmware image).
//! * [`registers`] — the host-visible control/status register block
//!   (interrupt cause/mask, sweep counters, doorbell).
//! * [`ringbuf`] — the measurement ring buffer read from user space.
//! * [`wmi`] — the Wireless Module Interface command set, extended with the
//!   paper's sector-override command.
//! * [`firmware`] — the sweep handler of Fig. 2 with the two patch hooks,
//!   implementing [`mac80211ad::FeedbackPolicy`] so it plugs directly into
//!   the SLS runner.
//! * [`driver`] — a `wil6210`-driver-like user-space facade: operation
//!   modes, WMI transport, ring-buffer reads and sweep event notifications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod firmware;
pub mod memmap;
pub mod patch;
pub mod registers;
pub mod ringbuf;
pub mod wmi;

pub use driver::{DriverMode, Wil6210Driver};
pub use firmware::Qca9500Firmware;
pub use ringbuf::{RingBuffer, SweepEntry};
pub use wmi::{WmiCommand, WmiError, WmiReply};
