//! Nexmon-style firmware patching.
//!
//! The Nexmon framework lets researchers write firmware patches in C and
//! place them at chosen addresses (§3.2). For the ARC600 cores this
//! required the paper's key discovery: patches targeting the code
//! partitions must be written through the *high* address mappings, "where
//! code and data sections are merged".
//!
//! Our emulated patches are descriptive records — a name, a target address
//! and the bytes — applied to the [`crate::memmap::MemoryMap`]. The two
//! patches of the paper ship as constants so the firmware emulation can
//! verify it has been "flashed" before enabling its hooks.

use crate::memmap::{MemError, MemoryMap, Region};
use serde::{Deserialize, Serialize};

/// A single patch blob to be written into chip memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patch {
    /// Human-readable name.
    pub name: String,
    /// Absolute target address (must be a high mapping for code regions).
    pub address: u32,
    /// The patch bytes (opaque to the emulation; a real patch would be
    /// ARC600 machine code).
    pub payload: Vec<u8>,
}

impl Patch {
    /// The ucode patch exporting SNR/RSSI of received SSW frames into the
    /// ring buffer (§3.3). Lives in the ucode patch area at 0x936000.
    pub fn sweep_info_export() -> Patch {
        Patch {
            name: "ucode-ssw-ringbuffer-export".into(),
            address: 0x0093_6000,
            payload: b"NEXMON:export-ssw-snr-rssi".to_vec(),
        }
    }

    /// The firmware patch adding the sector-override switch to the SSW
    /// feedback path (§3.4). Lives in the firmware patch area at 0x8f5000.
    pub fn sector_override() -> Patch {
        Patch {
            name: "fw-ssw-feedback-override".into(),
            address: 0x008f_5000,
            payload: b"NEXMON:wmi-sector-override".to_vec(),
        }
    }

    /// Applies the patch to the memory map.
    pub fn apply(&self, mem: &mut MemoryMap) -> Result<(), MemError> {
        mem.write(self.address, &self.payload)
    }

    /// Checks whether the patch bytes are present in memory.
    pub fn is_applied(&self, mem: &MemoryMap) -> bool {
        let mut buf = vec![0u8; self.payload.len()];
        mem.read(self.address, &mut buf).is_ok() && buf == self.payload
    }
}

/// Applies the paper's two patches, mimicking a full firmware flash.
pub fn flash_paper_patches(mem: &mut MemoryMap) -> Result<(), MemError> {
    Patch::sweep_info_export().apply(mem)?;
    Patch::sector_override().apply(mem)?;
    Ok(())
}

/// Returns the patch region a given address belongs to, if any — used in
/// diagnostics.
pub fn patch_region(addr: u32) -> Option<Region> {
    match addr {
        0x008f_5000..=0x008f_ffff => Some(Region::FirmwareCode),
        0x0093_6000..=0x0093_ffff => Some(Region::UcodeCode),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_patches_apply_via_high_mappings() {
        let mut mem = MemoryMap::new();
        let p1 = Patch::sweep_info_export();
        let p2 = Patch::sector_override();
        assert!(!p1.is_applied(&mem));
        flash_paper_patches(&mut mem).unwrap();
        assert!(p1.is_applied(&mem));
        assert!(p2.is_applied(&mem));
    }

    #[test]
    fn patching_low_code_address_fails() {
        let mut mem = MemoryMap::new();
        let bad = Patch {
            name: "naive-low-address".into(),
            address: 0x0001_6000, // ucode code, low window
            payload: vec![1, 2, 3],
        };
        assert!(matches!(
            bad.apply(&mut mem),
            Err(MemError::WriteProtected(_))
        ));
    }

    #[test]
    fn patch_addresses_fall_in_documented_patch_areas() {
        assert_eq!(
            patch_region(Patch::sector_override().address),
            Some(Region::FirmwareCode)
        );
        assert_eq!(
            patch_region(Patch::sweep_info_export().address),
            Some(Region::UcodeCode)
        );
        assert_eq!(patch_region(0x0), None);
    }

    #[test]
    fn applied_patch_is_visible_through_low_window() {
        // A patch placed at ucode high 0x936000 shows up at low 0x16000,
        // where the processor fetches it.
        let mut mem = MemoryMap::new();
        Patch::sweep_info_export().apply(&mut mem).unwrap();
        let mut buf = vec![0u8; 6];
        mem.read(0x0001_6000, &mut buf).unwrap();
        assert_eq!(&buf, b"NEXMON");
    }
}
