//! The QCA9500's dual-core memory layout (paper Fig. 1).
//!
//! Two ARC600 processors ("ucode" for real-time and "firmware" for other
//! MAC operations) each see a write-protected code partition and a writable
//! data partition at low addresses. All four regions are additionally
//! remapped into high addresses, where — as the paper discovered — they are
//! *writable* and host-accessible, which is what makes Nexmon-style
//! patching possible at all.
//!
//! | region        | low window            | high mapping |
//! |---------------|-----------------------|--------------|
//! | ucode code    | 0x000000–0x020000 (RO)| 0x920000     |
//! | firmware code | 0x040000–0x080000 (RO)| 0x8c0000     |
//! | firmware data | 0x080000–0x084000 (RW)| 0x900000     |
//! | ucode data    | 0x084000–0x088000 (RW)| 0x940000     |
//!
//! The emulation enforces exactly these rules: writes into a low code
//! window fail with [`MemError::WriteProtected`], the same bytes written
//! through the high mapping succeed, and both views observe each other.

use serde::{Deserialize, Serialize};

/// Identifies one of the four memory regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Real-time processor's code partition.
    UcodeCode,
    /// MAC processor's code partition.
    FirmwareCode,
    /// MAC processor's data partition.
    FirmwareData,
    /// Real-time processor's data partition.
    UcodeData,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 4] = [
        Region::UcodeCode,
        Region::FirmwareCode,
        Region::FirmwareData,
        Region::UcodeData,
    ];

    /// Low-window base address.
    pub fn low_base(self) -> u32 {
        match self {
            Region::UcodeCode => 0x0000_0000,
            Region::FirmwareCode => 0x0004_0000,
            Region::FirmwareData => 0x0008_0000,
            Region::UcodeData => 0x0008_4000,
        }
    }

    /// Region size in bytes.
    pub fn size(self) -> u32 {
        match self {
            Region::UcodeCode => 0x2_0000,
            Region::FirmwareCode => 0x4_0000,
            Region::FirmwareData => 0x4000,
            Region::UcodeData => 0x4000,
        }
    }

    /// High-mapping base address.
    pub fn high_base(self) -> u32 {
        match self {
            Region::UcodeCode => 0x0092_0000,
            Region::FirmwareCode => 0x008c_0000,
            Region::FirmwareData => 0x0090_0000,
            Region::UcodeData => 0x0094_0000,
        }
    }

    /// Whether the *low* window is write-protected (code partitions are).
    pub fn low_write_protected(self) -> bool {
        matches!(self, Region::UcodeCode | Region::FirmwareCode)
    }
}

/// Errors of the memory emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address does not fall into any mapped region.
    Unmapped(u32),
    /// A write hit a write-protected window.
    WriteProtected(u32),
    /// The access runs past the end of its region.
    OutOfBounds(u32, usize),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped(a) => write!(f, "address {a:#010x} is unmapped"),
            MemError::WriteProtected(a) => {
                write!(f, "address {a:#010x} is in a write-protected window")
            }
            MemError::OutOfBounds(a, n) => {
                write!(f, "access of {n} bytes at {a:#010x} crosses a region end")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// The emulated chip memory: one backing store per region, two views.
#[derive(Debug, Clone)]
pub struct MemoryMap {
    ucode_code: Vec<u8>,
    firmware_code: Vec<u8>,
    firmware_data: Vec<u8>,
    ucode_data: Vec<u8>,
}

impl Default for MemoryMap {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryMap {
    /// Creates a zeroed memory map.
    pub fn new() -> Self {
        MemoryMap {
            ucode_code: vec![0; Region::UcodeCode.size() as usize],
            firmware_code: vec![0; Region::FirmwareCode.size() as usize],
            firmware_data: vec![0; Region::FirmwareData.size() as usize],
            ucode_data: vec![0; Region::UcodeData.size() as usize],
        }
    }

    /// Resolves an absolute address to `(region, offset, via_high_mapping)`.
    pub fn resolve(&self, addr: u32) -> Result<(Region, u32, bool), MemError> {
        for r in Region::ALL {
            if addr >= r.low_base() && addr < r.low_base() + r.size() {
                return Ok((r, addr - r.low_base(), false));
            }
            if addr >= r.high_base() && addr < r.high_base() + r.size() {
                return Ok((r, addr - r.high_base(), true));
            }
        }
        Err(MemError::Unmapped(addr))
    }

    fn store(&self, r: Region) -> &Vec<u8> {
        match r {
            Region::UcodeCode => &self.ucode_code,
            Region::FirmwareCode => &self.firmware_code,
            Region::FirmwareData => &self.firmware_data,
            Region::UcodeData => &self.ucode_data,
        }
    }

    fn store_mut(&mut self, r: Region) -> &mut Vec<u8> {
        match r {
            Region::UcodeCode => &mut self.ucode_code,
            Region::FirmwareCode => &mut self.firmware_code,
            Region::FirmwareData => &mut self.firmware_data,
            Region::UcodeData => &mut self.ucode_data,
        }
    }

    /// Reads `buf.len()` bytes at `addr` (either view).
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), MemError> {
        let (r, off, _) = self.resolve(addr)?;
        let end = off as usize + buf.len();
        if end > r.size() as usize {
            return Err(MemError::OutOfBounds(addr, buf.len()));
        }
        buf.copy_from_slice(&self.store(r)[off as usize..end]);
        Ok(())
    }

    /// Writes bytes at `addr`, honouring the low-window write protection.
    ///
    /// This is the crux of the paper's §3.2: the identical bytes that are
    /// rejected at the low code addresses go through at the high mapping.
    pub fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        let (r, off, via_high) = self.resolve(addr)?;
        if !via_high && r.low_write_protected() {
            return Err(MemError::WriteProtected(addr));
        }
        let end = off as usize + data.len();
        if end > r.size() as usize {
            return Err(MemError::OutOfBounds(addr, data.len()));
        }
        self.store_mut(r)[off as usize..end].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_figure1() {
        assert_eq!(Region::UcodeCode.low_base(), 0x0);
        assert_eq!(Region::UcodeCode.high_base(), 0x92_0000);
        assert_eq!(Region::FirmwareCode.low_base(), 0x4_0000);
        assert_eq!(Region::FirmwareCode.high_base(), 0x8c_0000);
        assert_eq!(Region::FirmwareData.high_base(), 0x90_0000);
        assert_eq!(Region::UcodeData.high_base(), 0x94_0000);
        assert!(Region::UcodeCode.low_write_protected());
        assert!(!Region::UcodeData.low_write_protected());
    }

    #[test]
    fn low_code_writes_are_rejected_high_writes_succeed() {
        let mut m = MemoryMap::new();
        let patch = [0xde, 0xad, 0xbe, 0xef];
        // Low ucode-code window: write-protected.
        assert_eq!(
            m.write(0x0000_1000, &patch),
            Err(MemError::WriteProtected(0x1000))
        );
        // Same bytes via the high mapping: accepted.
        m.write(0x0092_1000, &patch).unwrap();
        // And visible through the low (read-only) window.
        let mut buf = [0u8; 4];
        m.read(0x0000_1000, &mut buf).unwrap();
        assert_eq!(buf, patch);
    }

    #[test]
    fn data_partitions_are_writable_in_both_views() {
        let mut m = MemoryMap::new();
        m.write(0x0008_0010, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        m.read(0x0090_0010, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        m.write(0x0094_0000, &[9]).unwrap();
        m.read(0x0008_4000, &mut buf[..1]).unwrap();
        assert_eq!(buf[0], 9);
    }

    #[test]
    fn unmapped_addresses_error() {
        let m = MemoryMap::new();
        let mut buf = [0u8; 1];
        assert_eq!(
            m.read(0x0002_0000, &mut buf),
            Err(MemError::Unmapped(0x2_0000))
        );
        assert_eq!(
            m.read(0x00a0_0000, &mut buf),
            Err(MemError::Unmapped(0xa0_0000))
        );
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let mut m = MemoryMap::new();
        let data = vec![0u8; 8];
        // Last byte of the ucode data region + 8 crosses the region end.
        let tail = Region::UcodeData.high_base() + Region::UcodeData.size() - 4;
        assert!(matches!(
            m.write(tail, &data),
            Err(MemError::OutOfBounds(_, 8))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(MemError::Unmapped(0x123).to_string().contains("unmapped"));
        assert!(MemError::WriteProtected(0x0)
            .to_string()
            .contains("write-protected"));
    }
}
