//! Anechoic-chamber measurement campaign emulation.
//!
//! §4 of the paper measures the 3-D radiation pattern of every predefined
//! sector: the device under test sits on a stepper-driven rotation head in
//! an anechoic chamber, a second device three meters away observes its
//! sweeps, and the firmware patches export per-sector SNR readings. The
//! measured patterns — not theoretical ones — are what the compressive
//! selection correlates against.
//!
//! * [`rotation`] — the rotation head: microstepped azimuth (precise) and
//!   manual elevation tilt (imprecise — §6.2 blames part of the elevation
//!   error on exactly this).
//! * [`campaign`] — the measurement driver: rotate, sweep, collect; then
//!   the paper's post-processing ("omitted obvious outliers, averaged over
//!   multiple measurements, and interpolated over gaps", §4.3).
//! * [`store`] — the pattern database with a plain-text (de)serialization,
//!   the equivalent of the pattern files the authors publish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod rotation;
pub mod store;

pub use campaign::{Campaign, CampaignConfig};
pub use rotation::RotationHead;
pub use store::SectorPatterns;
