//! The pattern measurement campaign (§4.3–§4.5).
//!
//! For every grid orientation the campaign turns the rotation head, makes
//! the two devices perform sector sweeps (keeping the "connection alive"
//! with pings in the paper; here we simply trigger the sweeps), and
//! collects the exported SNR readings per sector. Post-processing follows
//! §4.3: obvious outliers are omitted (median-absolute-deviation filter),
//! the rest averaged, and gaps where no frame decoded are interpolated.
//!
//! The output is one measured [`GainPattern`] per sector — the pattern
//! database the compressive selection runs on.

use crate::rotation::RotationHead;
use crate::store::SectorPatterns;
use geom::interp::{fill_gaps_circular, fill_gaps_linear};
use geom::sphere::SphericalGrid;
use geom::stats::median;
use rand::Rng;
use talon_array::{GainPattern, SectorId};
use talon_channel::{Device, Link};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The angular grid to measure (device coordinates).
    pub grid: SphericalGrid,
    /// Sweeps performed per orientation (the paper pings for 20 s with at
    /// least one sweep per second → ~20).
    pub sweeps_per_position: usize,
    /// MAD multiple beyond which a sample is an "obvious outlier".
    pub outlier_mad_threshold: f64,
    /// Fallback gain for sectors never observed at all, in dB (the
    /// firmware's report floor).
    pub floor_db: f64,
    /// Whether the azimuth axis wraps (full-circle scans do; ±90° scans
    /// don't).
    pub azimuth_wraps: bool,
}

impl CampaignConfig {
    /// §4.3: full azimuth circle at 0.9°, elevation 0°.
    pub fn paper_azimuth_scan() -> Self {
        CampaignConfig {
            grid: SphericalGrid::chamber_azimuth_scan(),
            sweeps_per_position: 20,
            outlier_mad_threshold: 4.0,
            floor_db: -7.0,
            azimuth_wraps: true,
        }
    }

    /// §4.5: az ±90° at 1.8°, el 0°–32.4° at 3.6°.
    pub fn paper_3d_scan() -> Self {
        CampaignConfig {
            grid: SphericalGrid::chamber_3d_scan(),
            sweeps_per_position: 20,
            outlier_mad_threshold: 4.0,
            floor_db: -7.0,
            azimuth_wraps: false,
        }
    }

    /// A coarse, fast variant for tests and quick runs.
    pub fn coarse() -> Self {
        CampaignConfig {
            grid: SphericalGrid::new(
                geom::sphere::GridSpec::new(-90.0, 90.0, 7.5),
                geom::sphere::GridSpec::new(0.0, 30.0, 10.0),
            ),
            sweeps_per_position: 6,
            outlier_mad_threshold: 4.0,
            floor_db: -7.0,
            azimuth_wraps: false,
        }
    }
}

/// The campaign driver.
pub struct Campaign {
    /// Configuration.
    pub config: CampaignConfig,
    /// The rotation head carrying the device under test.
    pub head: RotationHead,
}

impl Campaign {
    /// Creates a campaign with the paper's rotation head.
    pub fn new(config: CampaignConfig, head_seed: u64) -> Self {
        Campaign {
            config,
            head: RotationHead::paper_setup(head_seed),
        }
    }

    /// Measures the transmit patterns of every sweep sector of `dut` (the
    /// rotating device) as observed by `observer` over `link`.
    ///
    /// Returns the measured pattern database. To measure at device
    /// direction `(az, el)` the head turns to yaw `−az`, tilt `−el`, so the
    /// fixed line-of-sight ray arrives at exactly that device angle.
    pub fn measure_tx_patterns<R: Rng>(
        &mut self,
        rng: &mut R,
        link: &Link,
        dut: &mut Device,
        observer: &Device,
    ) -> SectorPatterns {
        let sectors = dut.codebook.sweep_order();
        let mut raw: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::new(); self.config.grid.len()]; sectors.len()];

        for el_i in 0..self.config.grid.el.len() {
            let el = self.config.grid.el.value(el_i);
            self.head.set_tilt(-el);
            for az_i in 0..self.config.grid.az.len() {
                let az = self.config.grid.az.value(az_i);
                self.head.set_azimuth(-az);
                dut.orientation = self.head.realized_orientation();
                let flat = el_i * self.config.grid.az.len() + az_i;
                for _ in 0..self.config.sweeps_per_position {
                    for (si, &sector) in sectors.iter().enumerate() {
                        if let Some(m) = link.probe(rng, dut, sector, observer) {
                            raw[si][flat].push(m.snr_db);
                        }
                    }
                }
            }
        }

        let mut store = SectorPatterns::new(self.config.grid.clone());
        for (si, &sector) in sectors.iter().enumerate() {
            let pattern = self.post_process(&raw[si]);
            store.insert(sector, pattern);
        }
        store
    }

    /// Measures the receive pattern ("Sector RX" of Fig. 5/6): roles are
    /// swapped — the fixed device transmits its strong unidirectional
    /// sector 63, the rotating device receives with its quasi-omni sector
    /// (§4.3).
    pub fn measure_rx_pattern<R: Rng>(
        &mut self,
        rng: &mut R,
        link: &Link,
        dut: &mut Device,
        fixed_tx: &Device,
    ) -> GainPattern {
        let mut raw: Vec<Vec<f64>> = vec![Vec::new(); self.config.grid.len()];
        for el_i in 0..self.config.grid.el.len() {
            let el = self.config.grid.el.value(el_i);
            self.head.set_tilt(-el);
            for az_i in 0..self.config.grid.az.len() {
                let az = self.config.grid.az.value(az_i);
                self.head.set_azimuth(-az);
                dut.orientation = self.head.realized_orientation();
                let flat = el_i * self.config.grid.az.len() + az_i;
                for _ in 0..self.config.sweeps_per_position {
                    // The rotating device is now the *receiver*.
                    if let Some(m) = link.probe(rng, fixed_tx, SectorId(63), dut) {
                        raw[flat].push(m.snr_db);
                    }
                }
            }
        }
        self.post_process(&raw)
    }

    /// §4.3 post-processing: outlier removal, averaging, gap interpolation.
    fn post_process(&self, samples_per_point: &[Vec<f64>]) -> GainPattern {
        let cfg = &self.config;
        let n_az = cfg.grid.az.len();
        let n_el = cfg.grid.el.len();
        let mut table: Vec<Option<f64>> = samples_per_point
            .iter()
            .map(|samples| robust_mean(samples, cfg.outlier_mad_threshold))
            .collect();
        // Interpolate gaps row by row (each elevation is one scan line).
        let mut out = Vec::with_capacity(table.len());
        for el_i in 0..n_el {
            let row = &mut table[el_i * n_az..(el_i + 1) * n_az];
            let filled = if cfg.azimuth_wraps {
                fill_gaps_circular(row, cfg.floor_db)
            } else {
                fill_gaps_linear(row, cfg.floor_db)
            };
            out.extend(filled);
        }
        GainPattern::from_table(cfg.grid.clone(), out)
    }
}

/// Removes samples farther than `mad_threshold` MADs from the median, then
/// averages the remainder. `None` if no samples survive.
fn robust_mean(samples: &[f64], mad_threshold: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let med = median(samples)?;
    let deviations: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
    let mad = median(&deviations)?;
    // Guard: with tiny samples/quantized data MAD can be 0; fall back to a
    // fixed 2 dB window around the median.
    let window = if mad > 1e-9 { mad * mad_threshold } else { 2.0 };
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|s| (s - med).abs() <= window)
        .collect();
    geom::stats::mean(&kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;
    use geom::sphere::{Direction, GridSpec};
    use talon_channel::Environment;

    #[test]
    fn robust_mean_drops_outliers() {
        let samples = vec![5.0, 5.25, 4.75, 5.0, 40.0];
        let m = robust_mean(&samples, 4.0).unwrap();
        assert!((m - 5.0).abs() < 0.2, "outlier removed: {m}");
        assert_eq!(robust_mean(&[], 4.0), None);
        assert_eq!(robust_mean(&[3.0], 4.0), Some(3.0));
    }

    /// One coarse campaign reused by the checks below (it is the slow part).
    fn run_campaign() -> (SectorPatterns, Device) {
        let link = Link::new(Environment::anechoic(3.0));
        let mut dut = Device::talon(11);
        let observer = Device::talon(12);
        let mut campaign = Campaign::new(CampaignConfig::coarse(), 7);
        let mut rng = sub_rng(7, "campaign-test");
        let store = campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &observer);
        (store, dut)
    }

    #[test]
    fn campaign_measures_all_sweep_sectors() {
        let (store, dut) = run_campaign();
        assert_eq!(store.len(), 34);
        for id in dut.codebook.sweep_order() {
            assert!(store.get(id).is_some(), "sector {id} measured");
        }
    }

    #[test]
    fn measured_peak_tracks_ground_truth_peak() {
        let (store, dut) = run_campaign();
        // For a strongly directional sector the measured pattern must peak
        // close to the true pattern's peak.
        let sector = dut.codebook.get(SectorId(63)).unwrap();
        let grid = store.grid().clone();
        let truth = GainPattern::sample(&dut.array, &sector.weights, &grid);
        let (_, true_peak) = truth.peak();
        let (_, meas_peak) = store.get(SectorId(63)).unwrap().peak();
        assert!(
            meas_peak.angle_to(&true_peak) < 12.0,
            "measured {meas_peak} vs truth {true_peak}"
        );
    }

    #[test]
    fn defective_sector_measures_weak() {
        let (store, _) = run_campaign();
        let p25 = store.get(SectorId(25)).unwrap();
        let p63 = store.get(SectorId(63)).unwrap();
        assert!(
            p63.peak().0 > p25.peak().0 + 4.0,
            "sector 63 {} vs 25 {}",
            p63.peak().0,
            p25.peak().0
        );
    }

    #[test]
    fn rx_pattern_is_measured_with_swapped_roles() {
        let link = Link::new(Environment::anechoic(3.0));
        let mut dut = Device::talon(11);
        let fixed = Device::talon(12);
        let cfg = CampaignConfig {
            grid: SphericalGrid::new(GridSpec::new(-60.0, 60.0, 15.0), GridSpec::fixed(0.0)),
            sweeps_per_position: 4,
            ..CampaignConfig::coarse()
        };
        let mut campaign = Campaign::new(cfg, 8);
        let mut rng = sub_rng(8, "rx-campaign");
        let rx = campaign.measure_rx_pattern(&mut rng, &link, &mut dut, &fixed);
        // Quasi-omni: coverage across the frontal range with modest spread.
        let (az, g) = rx.azimuth_cut(0.0);
        assert_eq!(az.len(), 9);
        let max = g.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = g.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < 10.0, "quasi-omni spread {max}-{min}");
    }

    #[test]
    fn pattern_gain_at_interrogates_measured_direction() {
        let (store, dut) = run_campaign();
        // The steered sector 20's measured gain at its nominal direction
        // beats its gain 60° away.
        let nominal = dut.codebook.get(SectorId(20)).unwrap().nominal_dir.unwrap();
        let p = store.get(SectorId(20)).unwrap();
        let at_peak = p.gain_interp(&nominal);
        let away = p.gain_interp(&Direction::new(nominal.az_deg - 60.0, 0.0));
        assert!(at_peak > away + 3.0, "{at_peak} vs {away}");
    }
}
