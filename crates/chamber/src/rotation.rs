//! The custom rotation head (§4.2, Fig. 4).
//!
//! "We mounted one device on a custom rotation head equipped with a
//! step-motor with microstepping support to obtain a high rotation
//! precision in the azimuth plane" — and, for the 3-D campaign, "manually
//! tilted the rotation head … despite using a digital mechanic's level, we
//! did not achieve a sub-degree precision in this direction" (§6.2).
//!
//! [`RotationHead`] models both: commanded azimuth is realized to
//! microstep precision; commanded tilt gets a frozen per-setting error.

use geom::rng::sub_rng;
use rand::Rng;
use talon_channel::Orientation;

/// The motorized mount holding the device under test.
#[derive(Debug, Clone)]
pub struct RotationHead {
    /// Azimuth step size the motor can realize (degrees per microstep).
    pub microstep_deg: f64,
    /// Std-dev of the manual tilt error, degrees.
    pub tilt_error_std_deg: f64,
    /// RNG seed for the tilt errors (frozen per campaign).
    seed: u64,
    /// Currently commanded azimuth (degrees).
    commanded_az: f64,
    /// Currently commanded tilt (degrees).
    commanded_tilt: f64,
    /// The realized tilt error of the current tilt setting.
    current_tilt_error: f64,
    /// Counts tilt adjustments (each manual adjustment draws a new error).
    tilt_adjustments: u64,
}

impl RotationHead {
    /// A head matching the paper's setup: 1/16-microstepped 0.9°-stepper
    /// (0.056° per microstep) and roughly ±0.5° of manual tilt error.
    pub fn paper_setup(seed: u64) -> Self {
        RotationHead {
            microstep_deg: 0.9 / 16.0,
            tilt_error_std_deg: 0.5,
            seed,
            commanded_az: 0.0,
            commanded_tilt: 0.0,
            current_tilt_error: 0.0,
            tilt_adjustments: 0,
        }
    }

    /// An ideal head with no errors (ablation).
    pub fn ideal() -> Self {
        RotationHead {
            microstep_deg: 1e-9,
            tilt_error_std_deg: 0.0,
            seed: 0,
            commanded_az: 0.0,
            commanded_tilt: 0.0,
            current_tilt_error: 0.0,
            tilt_adjustments: 0,
        }
    }

    /// Commands the stepper to an azimuth; realized to microstep precision.
    pub fn set_azimuth(&mut self, az_deg: f64) {
        self.commanded_az = az_deg;
    }

    /// Manually adjusts the tilt; draws a fresh realization error.
    pub fn set_tilt(&mut self, tilt_deg: f64) {
        self.commanded_tilt = tilt_deg;
        self.tilt_adjustments += 1;
        if self.tilt_error_std_deg > 0.0 {
            let mut rng = sub_rng(self.seed, &format!("tilt-{}", self.tilt_adjustments));
            // Box–Muller.
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.current_tilt_error = g * self.tilt_error_std_deg;
        } else {
            self.current_tilt_error = 0.0;
        }
    }

    /// The orientation the mounted device actually has.
    pub fn realized_orientation(&self) -> Orientation {
        let az = (self.commanded_az / self.microstep_deg).round() * self.microstep_deg;
        Orientation::new(az, self.commanded_tilt + self.current_tilt_error)
    }

    /// The orientation the experimenter *believes* the device has (used as
    /// ground truth in error statistics — which is exactly how the tilt
    /// error leaks into the paper's Fig. 7 elevation numbers).
    pub fn commanded_orientation(&self) -> Orientation {
        Orientation::new(self.commanded_az, self.commanded_tilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azimuth_is_microstep_precise() {
        let mut head = RotationHead::paper_setup(1);
        head.set_azimuth(33.333);
        let realized = head.realized_orientation().yaw_deg;
        assert!((realized - 33.333).abs() <= 0.9 / 16.0 / 2.0 + 1e-12);
    }

    #[test]
    fn tilt_has_persistent_error_per_setting() {
        let mut head = RotationHead::paper_setup(2);
        head.set_tilt(10.0);
        let a = head.realized_orientation().tilt_deg;
        let b = head.realized_orientation().tilt_deg;
        assert_eq!(a, b, "error frozen until the next manual adjustment");
        assert!((a - 10.0).abs() < 3.0, "error is bounded-ish: {a}");
        head.set_tilt(10.0);
        let c = head.realized_orientation().tilt_deg;
        assert_ne!(a, c, "re-adjusting draws a new error");
    }

    #[test]
    fn commanded_vs_realized_differ_only_by_errors() {
        let mut head = RotationHead::paper_setup(3);
        head.set_azimuth(-45.0);
        head.set_tilt(14.4);
        let cmd = head.commanded_orientation();
        let real = head.realized_orientation();
        assert_eq!(cmd.yaw_deg, -45.0);
        assert_eq!(cmd.tilt_deg, 14.4);
        assert!((real.yaw_deg - cmd.yaw_deg).abs() < 0.06);
        assert!((real.tilt_deg - cmd.tilt_deg).abs() < 3.0);
    }

    #[test]
    fn ideal_head_is_exact() {
        let mut head = RotationHead::ideal();
        head.set_azimuth(12.34);
        head.set_tilt(5.6);
        let o = head.realized_orientation();
        assert!((o.yaw_deg - 12.34).abs() < 1e-6);
        assert_eq!(o.tilt_deg, 5.6);
    }

    #[test]
    fn same_seed_reproduces_tilt_errors() {
        let mut a = RotationHead::paper_setup(9);
        let mut b = RotationHead::paper_setup(9);
        a.set_tilt(7.2);
        b.set_tilt(7.2);
        assert_eq!(
            a.realized_orientation().tilt_deg,
            b.realized_orientation().tilt_deg
        );
    }
}
