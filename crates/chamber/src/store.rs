//! The measured-pattern database.
//!
//! "All our measurement results can be found online" (§4.5) — the paper
//! ships its measured patterns as data files, and the selection algorithm
//! loads them. [`SectorPatterns`] is that artifact: one measured
//! [`GainPattern`] per sector on a common grid, with a plain-text
//! serialization so campaigns are measured once and reused.
//!
//! Format (line-oriented, whitespace-separated):
//!
//! ```text
//! talon-patterns-v1
//! az <start> <end> <step>
//! el <start> <end> <step>
//! sector <id> <g0> <g1> … <gN>     # flat elevation-major gains, dB
//! ```

use geom::sphere::{Direction, GridSpec, SphericalGrid};
use std::collections::BTreeMap;
use talon_array::{GainPattern, SectorId};

/// A database of measured sector patterns on a common grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SectorPatterns {
    grid: SphericalGrid,
    patterns: BTreeMap<SectorId, GainPattern>,
}

/// Errors when loading a pattern file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Missing or wrong magic line.
    BadMagic,
    /// A header or data line did not parse.
    Malformed(usize),
    /// A sector's gain table does not match the grid size.
    WrongLength(u8),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a talon-patterns-v1 file"),
            StoreError::Malformed(line) => write!(f, "malformed line {line}"),
            StoreError::WrongLength(s) => write!(f, "sector {s} has wrong table length"),
        }
    }
}

impl std::error::Error for StoreError {}

impl SectorPatterns {
    /// Creates an empty database on a grid.
    pub fn new(grid: SphericalGrid) -> Self {
        SectorPatterns {
            grid,
            patterns: BTreeMap::new(),
        }
    }

    /// The common measurement grid.
    pub fn grid(&self) -> &SphericalGrid {
        &self.grid
    }

    /// Inserts a measured pattern.
    ///
    /// # Panics
    /// Panics if the pattern's grid differs from the database grid.
    pub fn insert(&mut self, id: SectorId, pattern: GainPattern) {
        assert_eq!(pattern.grid, self.grid, "pattern grid mismatch");
        self.patterns.insert(id, pattern);
    }

    /// Pattern of a sector.
    pub fn get(&self, id: SectorId) -> Option<&GainPattern> {
        self.patterns.get(&id)
    }

    /// All sector IDs present, ascending.
    pub fn sector_ids(&self) -> Vec<SectorId> {
        self.patterns.keys().copied().collect()
    }

    /// Number of stored patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if no patterns stored.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The sector with the highest measured gain towards `dir` — Eq. 4's
    /// `argmax_n x_n(φ̂, θ̂)`.
    pub fn best_sector_at(&self, dir: &Direction) -> Option<SectorId> {
        self.patterns
            .iter()
            .map(|(id, p)| (*id, p.gain_interp(dir)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("gains are never NaN"))
            .map(|(id, _)| id)
    }

    /// Resamples every pattern onto a different grid by bilinear
    /// interpolation (clamped at the measured extent).
    ///
    /// Useful to run the estimator on a finer search grid than the
    /// campaign measured, or to unify stores measured with different
    /// resolutions.
    pub fn resample(&self, grid: &SphericalGrid) -> SectorPatterns {
        let mut out = SectorPatterns::new(grid.clone());
        for id in self.sector_ids() {
            let src = self.get(id).expect("id from store");
            let gains: Vec<f64> = grid.iter().map(|(_, d)| src.gain_interp(&d)).collect();
            out.insert(id, GainPattern::from_table(grid.clone(), gains));
        }
        out
    }

    /// Serializes the database.
    pub fn to_text(&self) -> String {
        let mut out = String::from("talon-patterns-v1\n");
        let w = |g: &GridSpec| format!("{} {} {}", g.start_deg, g.end_deg, g.step_deg);
        out.push_str(&format!("az {}\n", w(&self.grid.az)));
        out.push_str(&format!("el {}\n", w(&self.grid.el)));
        for (id, p) in &self.patterns {
            out.push_str(&format!("sector {}", id.raw()));
            for g in &p.gain_db {
                // Rust's default float formatting is shortest-round-trip,
                // so loading reproduces the exact measured values.
                out.push_str(&format!(" {g}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a database from its text form.
    pub fn from_text(text: &str) -> Result<SectorPatterns, StoreError> {
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines.next().ok_or(StoreError::BadMagic)?;
        if magic.trim() != "talon-patterns-v1" {
            return Err(StoreError::BadMagic);
        }
        let parse_axis = |line: Option<(usize, &str)>, tag: &str| -> Result<GridSpec, StoreError> {
            let (n, l) = line.ok_or(StoreError::Malformed(0))?;
            let parts: Vec<&str> = l.split_whitespace().collect();
            if parts.len() != 4 || parts[0] != tag {
                return Err(StoreError::Malformed(n + 1));
            }
            let vals: Result<Vec<f64>, _> = parts[1..].iter().map(|s| s.parse()).collect();
            let vals = vals.map_err(|_| StoreError::Malformed(n + 1))?;
            Ok(GridSpec::new(vals[0], vals[1], vals[2]))
        };
        let az = parse_axis(lines.next(), "az")?;
        let el = parse_axis(lines.next(), "el")?;
        let grid = SphericalGrid::new(az, el);
        let mut store = SectorPatterns::new(grid.clone());
        for (n, l) in lines {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let mut parts = l.split_whitespace();
            if parts.next() != Some("sector") {
                return Err(StoreError::Malformed(n + 1));
            }
            let id: u8 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(StoreError::Malformed(n + 1))?;
            let gains: Result<Vec<f64>, _> = parts.map(|s| s.parse()).collect();
            let gains = gains.map_err(|_| StoreError::Malformed(n + 1))?;
            if gains.len() != grid.len() {
                return Err(StoreError::WrongLength(id));
            }
            store.insert(SectorId(id), GainPattern::from_table(grid.clone(), gains));
        }
        Ok(store)
    }

    /// Writes the database to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a database from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Result<SectorPatterns, StoreError>> {
        Ok(Self::from_text(&std::fs::read_to_string(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_store() -> SectorPatterns {
        let grid = SphericalGrid::new(
            GridSpec::new(-10.0, 10.0, 10.0),
            GridSpec::new(0.0, 10.0, 10.0),
        );
        let mut s = SectorPatterns::new(grid.clone());
        s.insert(
            SectorId(1),
            GainPattern::from_table(grid.clone(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        s.insert(
            SectorId(63),
            GainPattern::from_table(grid, vec![6.0, 5.0, 4.0, 3.0, 2.0, 1.0]),
        );
        s
    }

    #[test]
    fn roundtrip_through_text() {
        let s = tiny_store();
        let text = s.to_text();
        let back = SectorPatterns::from_text(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn best_sector_at_picks_argmax() {
        let s = tiny_store();
        // At (az=-10, el=0) sector 63 has 6.0, sector 1 has 1.0.
        assert_eq!(
            s.best_sector_at(&Direction::new(-10.0, 0.0)),
            Some(SectorId(63))
        );
        // At (az=10, el=10) sector 1 has 6.0.
        assert_eq!(
            s.best_sector_at(&Direction::new(10.0, 10.0)),
            Some(SectorId(1))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            SectorPatterns::from_text("nope\naz 0 1 1\nel 0 1 1\n"),
            Err(StoreError::BadMagic)
        );
    }

    #[test]
    fn malformed_lines_rejected_with_line_numbers() {
        let text = "talon-patterns-v1\naz 0 10 5\nel 0 0 1\nsector x 1 2 3\n";
        assert_eq!(
            SectorPatterns::from_text(text),
            Err(StoreError::Malformed(4))
        );
        let text = "talon-patterns-v1\nzz 0 10 5\nel 0 0 1\n";
        assert_eq!(
            SectorPatterns::from_text(text),
            Err(StoreError::Malformed(2))
        );
    }

    #[test]
    fn wrong_table_length_rejected() {
        let text = "talon-patterns-v1\naz 0 10 5\nel 0 0 1\nsector 5 1.0 2.0\n";
        assert_eq!(
            SectorPatterns::from_text(text),
            Err(StoreError::WrongLength(5))
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = tiny_store();
        let mut text = s.to_text();
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(SectorPatterns::from_text(&text).unwrap(), s);
    }

    #[test]
    fn resample_preserves_values_at_original_points() {
        let s = tiny_store();
        // Upsample to 5° steps: original grid points must be exact.
        let fine = SphericalGrid::new(
            GridSpec::new(-10.0, 10.0, 5.0),
            GridSpec::new(0.0, 10.0, 5.0),
        );
        let r = s.resample(&fine);
        assert_eq!(r.len(), s.len());
        for id in s.sector_ids() {
            let src = s.get(id).unwrap();
            let dst = r.get(id).unwrap();
            for (_, d) in s.grid().iter() {
                assert!((src.gain_at(&d) - dst.gain_interp(&d)).abs() < 1e-9);
            }
        }
        // Interpolated midpoint of sector 1's ramp (1.0 → 2.0 at el 0).
        let mid = r
            .get(SectorId(1))
            .unwrap()
            .gain_interp(&Direction::new(-5.0, 0.0));
        assert!((mid - 1.5).abs() < 1e-9, "midpoint {mid}");
    }

    #[test]
    fn save_and_load_via_file() {
        let s = tiny_store();
        let dir = std::env::temp_dir().join("talon-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("patterns.txt");
        s.save(&path).unwrap();
        let back = SectorPatterns::load(&path).unwrap().unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn inserting_wrong_grid_panics() {
        let mut s = tiny_store();
        let other = SphericalGrid::new(GridSpec::new(0.0, 5.0, 5.0), GridSpec::fixed(0.0));
        s.insert(SectorId(2), GainPattern::from_table(other, vec![0.0, 1.0]));
    }
}
