//! Property-based tests for the pattern store and campaign post-processing.

use chamber::SectorPatterns;
use geom::sphere::{GridSpec, SphericalGrid};
use proptest::prelude::*;
use talon_array::{GainPattern, SectorId};

fn arb_grid() -> impl Strategy<Value = SphericalGrid> {
    (2usize..8, 1usize..5).prop_map(|(naz, nel)| {
        SphericalGrid::new(
            GridSpec::new(-30.0, -30.0 + (naz - 1) as f64 * 5.0, 5.0),
            GridSpec::new(0.0, (nel - 1) as f64 * 5.0, 5.0),
        )
    })
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_input(text in ".{0,300}") {
        // Any input must produce Ok or Err, never a panic.
        let _ = SectorPatterns::from_text(&text);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        nums in prop::collection::vec(-1e3f64..1e3, 0..12),
        id in any::<u8>(),
    ) {
        let mut text = String::from("talon-patterns-v1\naz 0 10 5\nel 0 0 1\n");
        text.push_str(&format!("sector {id}"));
        for n in nums {
            text.push_str(&format!(" {n}"));
        }
        text.push('\n');
        let _ = SectorPatterns::from_text(&text);
    }

    #[test]
    fn store_roundtrips_through_text(
        grid in arb_grid(),
        seed_gains in prop::collection::vec(-7.0f64..12.0, 1..200),
        ids in prop::collection::btree_set(1u8..32, 1..6),
    ) {
        let mut store = SectorPatterns::new(grid.clone());
        for (k, id) in ids.iter().enumerate() {
            let gains: Vec<f64> = (0..grid.len())
                .map(|i| seed_gains[(i + k * 7) % seed_gains.len()])
                .collect();
            store.insert(SectorId(*id), GainPattern::from_table(grid.clone(), gains));
        }
        let text = store.to_text();
        let back = SectorPatterns::from_text(&text).unwrap();
        prop_assert_eq!(back, store);
    }

    #[test]
    fn best_sector_at_returns_a_stored_id(
        grid in arb_grid(),
        az in -30.0f64..30.0,
        el in 0.0f64..20.0,
    ) {
        let mut store = SectorPatterns::new(grid.clone());
        for id in [3u8, 9, 27] {
            let gains: Vec<f64> = (0..grid.len())
                .map(|i| ((i * id as usize) % 19) as f64 - 7.0)
                .collect();
            store.insert(SectorId(id), GainPattern::from_table(grid.clone(), gains));
        }
        let best = store.best_sector_at(&geom::Direction::new(az, el)).unwrap();
        prop_assert!(store.get(best).is_some());
        // The winner really has the maximal interpolated gain.
        let dir = geom::Direction::new(az, el);
        let g_best = store.get(best).unwrap().gain_interp(&dir);
        for id in store.sector_ids() {
            prop_assert!(store.get(id).unwrap().gain_interp(&dir) <= g_best + 1e-9);
        }
    }

    #[test]
    fn pattern_peak_is_max_of_table(
        grid in arb_grid(),
        gains_seed in any::<u64>(),
    ) {
        let gains: Vec<f64> = (0..grid.len())
            .map(|i| {
                let x = gains_seed.wrapping_mul(i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                (x % 1900) as f64 / 100.0 - 7.0
            })
            .collect();
        let p = GainPattern::from_table(grid, gains.clone());
        let (peak, dir) = p.peak();
        let max = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(peak, max);
        prop_assert_eq!(p.gain_at(&dir), peak);
    }
}
