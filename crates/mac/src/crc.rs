//! IEEE 802.3 CRC-32, used as the frame check sequence (FCS) of 802.11
//! frames.
//!
//! Reflected polynomial `0xEDB88320`, init `0xFFFFFFFF`, final XOR
//! `0xFFFFFFFF` — the classic "CRC-32" every Wi-Fi frame carries. A small
//! table-driven implementation keeps the simulator honest: corrupted frames
//! really fail their checksum.

/// Computes the CRC-32 of a byte slice.
///
/// ```
/// use mac80211ad::crc::crc32;
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    crc ^ 0xFFFF_FFFF
}

/// Appends the little-endian FCS to a frame body.
pub fn append_fcs(body: &mut Vec<u8>) {
    let fcs = crc32(body);
    body.extend_from_slice(&fcs.to_le_bytes());
}

/// Verifies and strips the FCS of a received frame. Returns the body
/// without FCS, or `None` if the frame is too short or the checksum fails.
pub fn check_and_strip_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 4 {
        return None;
    }
    let (body, fcs_bytes) = frame.split_at(frame.len() - 4);
    let fcs = u32::from_le_bytes([fcs_bytes[0], fcs_bytes[1], fcs_bytes[2], fcs_bytes[3]]);
    if crc32(body) == fcs {
        Some(body)
    } else {
        None
    }
}

/// The 256-entry lookup table, built once.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_and_strip_roundtrip() {
        let mut frame = b"hello 802.11ad".to_vec();
        append_fcs(&mut frame);
        assert_eq!(frame.len(), 18);
        let body = check_and_strip_fcs(&frame).expect("FCS must verify");
        assert_eq!(body, b"hello 802.11ad");
    }

    #[test]
    fn corruption_is_detected() {
        let mut frame = b"payload".to_vec();
        append_fcs(&mut frame);
        frame[2] ^= 0x40;
        assert!(check_and_strip_fcs(&frame).is_none());
    }

    #[test]
    fn short_frames_are_rejected() {
        assert!(check_and_strip_fcs(&[1, 2, 3]).is_none());
    }
}
