//! DMG frame encode/decode.
//!
//! Four frame types appear in the paper's protocol flow (Fig. 2): DMG
//! Beacons (the AP's periodic sector-swept announcements), SSW frames (the
//! probes of both sweep halves), SSW-Feedback and SSW-ACK frames.
//!
//! Framing follows 802.11: a 2-octet Frame Control, addresses, the
//! beamforming fields from [`crate::fields`], and a CRC-32 FCS. The DMG
//! Beacon is reduced to the fields our experiments read (timestamp, beacon
//! interval and the SSW field carrying sector ID + CDOWN); the full
//! beacon's DMG-parameter soup is irrelevant to sector selection.
//!
//! Everything encodes to/from [`bytes::Bytes`], and decoding verifies the
//! FCS — a corrupted frame is indistinguishable from a missed frame, just
//! like on real hardware.

use crate::addr::MacAddr;
use crate::crc::{append_fcs, check_and_strip_fcs};
use crate::fields::{SswFeedbackField, SswField};
use bytes::{Buf, Bytes};
use serde::{Deserialize, Serialize};

/// Frame Control values for the frames we model.
///
/// 802.11ad carries SSW/SSW-Feedback/SSW-ACK as control-frame extensions
/// (type 01, subtype 0110, extension selector in B8–B11); the DMG Beacon is
/// an extension-type frame (type 11, subtype 0000).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(clippy::enum_variant_names)]
enum FrameKind {
    DmgBeacon,
    Ssw,
    SswFeedback,
    SswAck,
}

impl FrameKind {
    fn frame_control(self) -> u16 {
        // [proto(2)=0 | type(2) | subtype(4) | ext(4) | flags(4)=0]
        match self {
            // Extension frame type 0b11, subtype 0000.
            FrameKind::DmgBeacon => 0b11 << 2,
            // Control 0b01, subtype 0110 (control frame extension),
            // extension selector: SSW=2, SSW-Feedback=3, SSW-ACK=4.
            FrameKind::Ssw => (0b01 << 2) | (0b0110 << 4) | (2 << 8),
            FrameKind::SswFeedback => (0b01 << 2) | (0b0110 << 4) | (3 << 8),
            FrameKind::SswAck => (0b01 << 2) | (0b0110 << 4) | (4 << 8),
        }
    }

    fn from_frame_control(fc: u16) -> Option<FrameKind> {
        match fc {
            x if x == FrameKind::DmgBeacon.frame_control() => Some(FrameKind::DmgBeacon),
            x if x == FrameKind::Ssw.frame_control() => Some(FrameKind::Ssw),
            x if x == FrameKind::SswFeedback.frame_control() => Some(FrameKind::SswFeedback),
            x if x == FrameKind::SswAck.frame_control() => Some(FrameKind::SswAck),
            _ => None,
        }
    }
}

/// A DMG Beacon (simplified to the experiment-relevant fields).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmgBeacon {
    /// BSSID of the transmitting AP.
    pub bssid: MacAddr,
    /// TSF timestamp in microseconds.
    pub timestamp_us: u64,
    /// Beacon interval in time units (1 TU = 1024 µs; 100 TU = 102.4 ms).
    pub beacon_interval_tu: u16,
    /// The sector sweep field (sector ID + CDOWN, Table 1).
    pub ssw: SswField,
}

/// An SSW probe frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SswFrame {
    /// Receiver address.
    pub ra: MacAddr,
    /// Transmitter address.
    pub ta: MacAddr,
    /// The sector sweep field.
    pub ssw: SswField,
    /// The feedback field (meaningful in responder frames, which echo the
    /// best initiator sector back — the field our firmware patch rewrites).
    pub feedback: SswFeedbackField,
}

/// An SSW-Feedback frame (initiator → responder, ends the RSS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SswFeedbackFrame {
    /// Receiver address.
    pub ra: MacAddr,
    /// Transmitter address.
    pub ta: MacAddr,
    /// The feedback field.
    pub feedback: SswFeedbackField,
}

/// An SSW-ACK frame (responder → initiator, closes the SLS phase).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SswAckFrame {
    /// Receiver address.
    pub ra: MacAddr,
    /// Transmitter address.
    pub ta: MacAddr,
    /// The feedback field.
    pub feedback: SswFeedbackField,
}

/// Any frame the simulator can put on the air.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// A DMG beacon.
    Beacon(DmgBeacon),
    /// An SSW probe frame.
    Ssw(SswFrame),
    /// An SSW feedback frame.
    SswFeedback(SswFeedbackFrame),
    /// An SSW acknowledgment frame.
    SswAck(SswAckFrame),
}

impl Frame {
    /// Serializes the frame, appending the FCS.
    pub fn encode(&self) -> Bytes {
        let mut out: Vec<u8> = Vec::with_capacity(32);
        match self {
            Frame::Beacon(b) => {
                out.extend_from_slice(&FrameKind::DmgBeacon.frame_control().to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes()); // duration
                out.extend_from_slice(&b.bssid.0);
                out.extend_from_slice(&b.timestamp_us.to_le_bytes());
                out.extend_from_slice(&b.beacon_interval_tu.to_le_bytes());
                out.extend_from_slice(&b.ssw.encode());
            }
            Frame::Ssw(f) => {
                out.extend_from_slice(&FrameKind::Ssw.frame_control().to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
                out.extend_from_slice(&f.ra.0);
                out.extend_from_slice(&f.ta.0);
                out.extend_from_slice(&f.ssw.encode());
                out.extend_from_slice(&f.feedback.encode());
            }
            Frame::SswFeedback(f) => {
                out.extend_from_slice(&FrameKind::SswFeedback.frame_control().to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
                out.extend_from_slice(&f.ra.0);
                out.extend_from_slice(&f.ta.0);
                out.extend_from_slice(&f.feedback.encode());
            }
            Frame::SswAck(f) => {
                out.extend_from_slice(&FrameKind::SswAck.frame_control().to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
                out.extend_from_slice(&f.ra.0);
                out.extend_from_slice(&f.ta.0);
                out.extend_from_slice(&f.feedback.encode());
            }
        }
        append_fcs(&mut out);
        Bytes::from(out)
    }

    /// Parses a frame, verifying the FCS. Returns `None` on bad checksum,
    /// truncation or unknown frame control.
    pub fn decode(raw: &[u8]) -> Option<Frame> {
        let body = check_and_strip_fcs(raw)?;
        let mut buf = body;
        if buf.remaining() < 4 {
            return None;
        }
        let fc = buf.get_u16_le();
        let _duration = buf.get_u16_le();
        let kind = FrameKind::from_frame_control(fc)?;
        match kind {
            FrameKind::DmgBeacon => {
                if buf.remaining() != 6 + 8 + 2 + 3 {
                    return None;
                }
                let bssid = get_addr(&mut buf);
                let timestamp_us = buf.get_u64_le();
                let beacon_interval_tu = buf.get_u16_le();
                let ssw = get_ssw(&mut buf);
                Some(Frame::Beacon(DmgBeacon {
                    bssid,
                    timestamp_us,
                    beacon_interval_tu,
                    ssw,
                }))
            }
            FrameKind::Ssw => {
                if buf.remaining() != 6 + 6 + 3 + 3 {
                    return None;
                }
                let ra = get_addr(&mut buf);
                let ta = get_addr(&mut buf);
                let ssw = get_ssw(&mut buf);
                let feedback = get_feedback(&mut buf);
                Some(Frame::Ssw(SswFrame {
                    ra,
                    ta,
                    ssw,
                    feedback,
                }))
            }
            FrameKind::SswFeedback | FrameKind::SswAck => {
                if buf.remaining() != 6 + 6 + 3 {
                    return None;
                }
                let ra = get_addr(&mut buf);
                let ta = get_addr(&mut buf);
                let feedback = get_feedback(&mut buf);
                Some(match kind {
                    FrameKind::SswFeedback => {
                        Frame::SswFeedback(SswFeedbackFrame { ra, ta, feedback })
                    }
                    _ => Frame::SswAck(SswAckFrame { ra, ta, feedback }),
                })
            }
        }
    }
}

fn get_addr(buf: &mut &[u8]) -> MacAddr {
    let mut a = [0u8; 6];
    buf.copy_to_slice(&mut a);
    MacAddr(a)
}

fn get_ssw(buf: &mut &[u8]) -> SswField {
    let mut b = [0u8; 3];
    buf.copy_to_slice(&mut b);
    SswField::decode(&b)
}

fn get_feedback(buf: &mut &[u8]) -> SswFeedbackField {
    let mut b = [0u8; 3];
    buf.copy_to_slice(&mut b);
    SswFeedbackField::decode(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{encode_snr, SweepDirection};
    use talon_array::SectorId;

    fn sample_ssw_field() -> SswField {
        SswField {
            direction: SweepDirection::Initiator,
            cdown: 17,
            sector_id: SectorId(18),
            dmg_antenna_id: 0,
            rxss_length: 0,
        }
    }

    fn sample_feedback() -> SswFeedbackField {
        SswFeedbackField {
            sector_select: SectorId(24),
            dmg_antenna_select: 0,
            snr_report: encode_snr(10.5),
            poll_required: false,
        }
    }

    #[test]
    fn beacon_roundtrip() {
        let b = Frame::Beacon(DmgBeacon {
            bssid: MacAddr::device(1),
            timestamp_us: 123_456_789,
            beacon_interval_tu: 100,
            ssw: sample_ssw_field(),
        });
        let enc = b.encode();
        assert_eq!(enc.len(), 2 + 2 + 6 + 8 + 2 + 3 + 4);
        assert_eq!(Frame::decode(&enc), Some(b));
    }

    #[test]
    fn ssw_frame_roundtrip_and_size() {
        let f = Frame::Ssw(SswFrame {
            ra: MacAddr::device(2),
            ta: MacAddr::device(1),
            ssw: sample_ssw_field(),
            feedback: sample_feedback(),
        });
        let enc = f.encode();
        // FC(2)+Dur(2)+RA(6)+TA(6)+SSW(3)+FBCK(3)+FCS(4) = 26 octets, the
        // standard's SSW frame length.
        assert_eq!(enc.len(), 26);
        assert_eq!(Frame::decode(&enc), Some(f));
    }

    #[test]
    fn feedback_and_ack_roundtrip() {
        let fb = Frame::SswFeedback(SswFeedbackFrame {
            ra: MacAddr::device(2),
            ta: MacAddr::device(1),
            feedback: sample_feedback(),
        });
        let ack = Frame::SswAck(SswAckFrame {
            ra: MacAddr::device(1),
            ta: MacAddr::device(2),
            feedback: sample_feedback(),
        });
        assert_eq!(Frame::decode(&fb.encode()), Some(fb));
        assert_eq!(Frame::decode(&ack.encode()), Some(ack));
        // Feedback and ACK differ only in frame control.
        assert_ne!(fb.encode(), ack.encode());
    }

    #[test]
    fn corrupted_frame_fails_decode() {
        let f = Frame::Ssw(SswFrame {
            ra: MacAddr::device(2),
            ta: MacAddr::device(1),
            ssw: sample_ssw_field(),
            feedback: sample_feedback(),
        });
        let mut raw = f.encode().to_vec();
        raw[10] ^= 0x01;
        assert_eq!(Frame::decode(&raw), None);
    }

    #[test]
    fn truncated_frame_fails_decode() {
        let f = Frame::Beacon(DmgBeacon {
            bssid: MacAddr::device(1),
            timestamp_us: 0,
            beacon_interval_tu: 100,
            ssw: sample_ssw_field(),
        });
        let raw = f.encode();
        assert_eq!(Frame::decode(&raw[..raw.len() - 5]), None);
    }

    #[test]
    fn unknown_frame_control_rejected() {
        let mut raw = vec![0xAAu8, 0xBB, 0, 0, 1, 2, 3];
        crate::crc::append_fcs(&mut raw);
        assert_eq!(Frame::decode(&raw), None);
    }
}
