//! Virtual time and the paper's measured timing constants.
//!
//! §4.1 measures on the real device: beacons fire every 102.4 ms, sector
//! sweeps at least once per second, each sweep frame occupies 18.0 µs on
//! the air, and a mutual transmit-sector training adds 49.1 µs of
//! initialization and feedback overhead — 1.27 ms total for the stock
//! 34-sector sweep, 0.55 ms for the paper's 14-probe compressive sweep
//! (Fig. 10).
//!
//! The simulator never touches the wall clock: [`SimTime`] is a nanosecond
//! counter advanced explicitly by the protocol code.

use serde::{Deserialize, Serialize};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// The time as fractional microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time as fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Builds a duration from microseconds.
    pub fn from_us(us: f64) -> SimDuration {
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Builds a duration from milliseconds.
    pub fn from_ms(ms: f64) -> SimDuration {
        SimDuration((ms * 1_000_000.0).round() as u64)
    }

    /// The duration as fractional microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration as fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scales by an integer count.
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl std::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

/// On-air time of one SSW probe frame: 18.0 µs (§4.1).
pub const SSW_FRAME_TIME: SimDuration = SimDuration(18_000);

/// Initialization + feedback + acknowledgment overhead of one mutual
/// transmit-sector training: 49.1 µs (§4.1).
pub const SLS_OVERHEAD: SimDuration = SimDuration(49_100);

/// Beacon interval: 100 TU = 102.4 ms (§4.1).
pub const BEACON_INTERVAL: SimDuration = SimDuration(102_400_000);

/// The Talon triggers sector sweeps at least once per second (§4.1).
pub const SWEEP_PERIOD: SimDuration = SimDuration(1_000_000_000);

/// Time for a *mutual* (both directions) transmit-sector training in which
/// each side probes `probes` sectors.
///
/// `t = 2 · probes · 18.0 µs + 49.1 µs` — Fig. 10's line. The stock sweep
/// (34 probes) gives 1.27 ms; 14 probes give 0.55 ms.
pub fn mutual_training_time(probes: usize) -> SimDuration {
    SSW_FRAME_TIME.times(2 * probes as u64) + SLS_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_training_times() {
        // §4.1 / Fig. 10 anchor points.
        let full = mutual_training_time(34);
        assert!((full.as_ms() - 1.273).abs() < 0.005, "{}", full.as_ms());
        let css = mutual_training_time(14);
        assert!((css.as_ms() - 0.553).abs() < 0.005, "{}", css.as_ms());
        // Headline speedup factor 2.3.
        let speedup = full.as_ms() / css.as_ms();
        assert!((speedup - 2.3).abs() < 0.05, "speedup {speedup}");
    }

    #[test]
    fn beacon_interval_is_102_4_ms() {
        assert_eq!(BEACON_INTERVAL.as_ms(), 102.4);
    }

    #[test]
    fn time_arithmetic() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_us(18.0);
        // Exercise the by-value Add impl as well as AddAssign.
        t = SimTime::ZERO + SimDuration::from_us(18.0) + SimDuration::from_us(49.1);
        assert!((t.as_us() - 67.1).abs() < 1e-9);
        assert_eq!(t.since(SimTime::ZERO), SimDuration(67_100));
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_ms(1.27).0, 1_270_000);
        assert_eq!(SimDuration::from_us(18.0).times(34).as_us(), 612.0);
        assert_eq!(
            SimDuration::from_us(10.0) + SimDuration::from_us(5.0),
            SimDuration::from_us(15.0)
        );
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_reversed_order() {
        SimTime(5).since(SimTime(10));
    }
}
