//! IEEE 802.11ad (DMG) MAC substrate: frames, timing, sector sweep.
//!
//! This crate models the slice of the 802.11ad MAC that the paper touches:
//!
//! * [`addr`] — MAC addresses.
//! * [`crc`] — the IEEE 802.3 CRC-32 used as frame FCS.
//! * [`fields`] — bit-exact SSW and SSW-Feedback fields (the sector ID and
//!   CDOWN counters of Table 1 live here).
//! * [`frames`] — DMG Beacon, SSW, SSW-Feedback and SSW-ACK frames with
//!   byte-level encode/decode on [`bytes`].
//! * [`timing`] — the virtual clock and the paper's measured timing
//!   constants (18.0 µs per sweep frame, 49.1 µs feedback overhead,
//!   102.4 ms beacon interval, ≥1 sweep per second).
//! * [`schedule`] — which sector is transmitted at which CDOWN slot during
//!   beaconing and sweeping (reproduces Table 1).
//! * [`sls`] — the sector level sweep protocol: initiator and responder
//!   state machines exchanging probe frames over a simulated link, with a
//!   pluggable [`sls::FeedbackPolicy`] so the stock argmax selection can be
//!   replaced by the paper's compressive selection (via the firmware
//!   patch hooks in the `wil6210` crate).
//! * [`bti`] — beacon-interval scheduling (102.4 ms beacon bursts over the
//!   Table 1 slots) and the slotted A-BFT contention window.
//! * [`assoc`] — network bring-up: beacon discovery plus A-BFT initial
//!   beamforming between an AP and a joining station.
//! * [`capture`] — a monitor-mode observer that reconstructs Table 1 from
//!   decoded frames, as the paper does with tcpdump/Wireshark.
//!
//! Fidelity notes: frame layouts follow IEEE 802.11-2016 §9 for the SSW and
//! SSW-Feedback fields and the control-frame framing; the DMG Beacon is
//! reduced to the fields the experiments read (timestamp, beacon interval,
//! SSW field). All multi-byte fields are little-endian as on the air.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod assoc;
pub mod bti;
pub mod capture;
pub mod crc;
pub mod fields;
pub mod frames;
pub mod schedule;
pub mod sls;
pub mod timing;

pub use addr::MacAddr;
pub use fields::{SswFeedbackField, SswField, SweepDirection};
pub use frames::{DmgBeacon, Frame, SswAckFrame, SswFeedbackFrame, SswFrame};
pub use sls::{FeedbackPolicy, MaxSnrPolicy, SlsConfig, SlsOutcome, SlsRunner};
pub use timing::{SimDuration, SimTime};
