//! The Sector Level Sweep (SLS) beamforming protocol.
//!
//! Two stations mutually train their transmit sectors (Fig. 2 of the
//! paper): the initiator sweeps probe frames (ISS), the responder measures
//! them, sweeps back (RSS) while echoing its choice of initiator sector in
//! the SSW feedback field, the initiator answers with an SSW-Feedback frame
//! carrying its choice of responder sector, and the responder closes with
//! an SSW-ACK.
//!
//! The *selection* step is pluggable through [`FeedbackPolicy`]. The stock
//! firmware behaviour is [`MaxSnrPolicy`] (Eq. 1: pick the sector with the
//! strongest reported SNR, probing everything). The paper's compressive
//! selection plugs in at exactly this point — in the real system via the
//! Nexmon firmware hooks modelled in the `wil6210` crate.

use crate::addr::MacAddr;
use crate::fields::{encode_snr, SswFeedbackField, SswField, SweepDirection};
use crate::frames::{Frame, SswAckFrame, SswFeedbackFrame, SswFrame};
use crate::schedule::BurstSchedule;
use crate::timing::{SimDuration, SimTime, SLS_OVERHEAD, SSW_FRAME_TIME};
use rand::Rng;
use serde::{Deserialize, Serialize};
use talon_array::SectorId;
use talon_channel::{Device, Link, SweepReading};

/// Chooses sectors from sweep measurements and decides what to probe.
///
/// One policy instance belongs to one station. `select` corresponds to the
/// "Select Best Sector" box of Fig. 2; `probe_sectors` determines the
/// station's own transmit sweep (the stock firmware probes everything; the
/// compressive selection probes a random subset).
pub trait FeedbackPolicy {
    /// Which sectors to transmit during this station's sweep, given the
    /// codebook's full sweep order.
    fn probe_sectors(&mut self, full_sweep: &[SectorId]) -> Vec<SectorId>;

    /// Which sector to feed back to the peer, given the readings collected
    /// while the peer swept. `None` if nothing usable was received.
    fn select(&mut self, readings: &[SweepReading]) -> Option<SectorId>;
}

/// The stock sector sweep behaviour: probe all sectors, pick the highest
/// reported SNR (Eq. 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSnrPolicy;

impl FeedbackPolicy for MaxSnrPolicy {
    fn probe_sectors(&mut self, full_sweep: &[SectorId]) -> Vec<SectorId> {
        full_sweep.to_vec()
    }

    fn select(&mut self, readings: &[SweepReading]) -> Option<SectorId> {
        readings
            .iter()
            .filter_map(|r| r.measurement.map(|m| (r.sector, m.snr_db)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("SNR is never NaN"))
            .map(|(s, _)| s)
    }
}

/// Configuration of one SLS run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlsConfig {
    /// MAC address of the initiator.
    pub initiator_addr: MacAddr,
    /// MAC address of the responder.
    pub responder_addr: MacAddr,
}

impl Default for SlsConfig {
    fn default() -> Self {
        SlsConfig {
            initiator_addr: MacAddr::device(1),
            responder_addr: MacAddr::device(2),
        }
    }
}

/// Everything one SLS run produced.
#[derive(Debug, Clone)]
pub struct SlsOutcome {
    /// Sector the responder selected for the *initiator's* transmissions
    /// (fed back in the RSS frames' feedback field).
    pub initiator_tx_sector: Option<SectorId>,
    /// Sector the initiator selected for the *responder's* transmissions
    /// (carried in the SSW-Feedback frame).
    pub responder_tx_sector: Option<SectorId>,
    /// Readings the responder collected during the ISS.
    pub iss_readings: Vec<SweepReading>,
    /// Readings the initiator collected during the RSS.
    pub rss_readings: Vec<SweepReading>,
    /// All frames put on the air, with their transmit times.
    pub frames: Vec<(SimTime, Frame)>,
    /// Total duration of the training.
    pub duration: SimDuration,
}

/// Drives one or more SLS trainings between two devices over a link.
pub struct SlsRunner<'a> {
    /// The propagation link (initiator → responder direction; the model is
    /// symmetric, so the same link serves both sweep halves).
    pub link: &'a Link,
    /// The initiating device.
    pub initiator: &'a Device,
    /// The responding device.
    pub responder: &'a Device,
    /// Addressing.
    pub config: SlsConfig,
}

impl<'a> SlsRunner<'a> {
    /// Creates a runner with default addressing.
    pub fn new(link: &'a Link, initiator: &'a Device, responder: &'a Device) -> Self {
        SlsRunner {
            link,
            initiator,
            responder,
            config: SlsConfig::default(),
        }
    }

    /// Runs one mutual training.
    ///
    /// `initiator_policy` selects the responder's sector and decides the
    /// initiator's probes; `responder_policy` the converse.
    pub fn run<R, PI, PR>(
        &self,
        rng: &mut R,
        initiator_policy: &mut PI,
        responder_policy: &mut PR,
    ) -> SlsOutcome
    where
        R: Rng,
        PI: FeedbackPolicy + ?Sized,
        PR: FeedbackPolicy + ?Sized,
    {
        let mut span = obs::sink_active().then(|| obs::span("sls.run"));
        obs::counter("sls.runs").inc();
        let mut now = SimTime::ZERO;
        let mut frames = Vec::new();

        // --- Initiator Sector Sweep (ISS) -------------------------------
        let full_i = self.initiator.codebook.sweep_order();
        let iss_sectors = initiator_policy.probe_sectors(&full_i);
        let iss_schedule = BurstSchedule::custom_sweep(&iss_sectors);
        let mut iss_readings = Vec::with_capacity(iss_sectors.len());
        for (cdown, sector) in iss_schedule.transmissions() {
            let frame = Frame::Ssw(SswFrame {
                ra: self.config.responder_addr,
                ta: self.config.initiator_addr,
                ssw: SswField {
                    direction: SweepDirection::Initiator,
                    cdown,
                    sector_id: sector,
                    dmg_antenna_id: 0,
                    rxss_length: 0,
                },
                // During the ISS the initiator has nothing to feed back yet.
                feedback: SswFeedbackField {
                    sector_select: SectorId(0),
                    dmg_antenna_select: 0,
                    snr_report: 0,
                    poll_required: false,
                },
            });
            frames.push((now, frame));
            now += SSW_FRAME_TIME;
            // The responder's firmware measures the received probe.
            iss_readings.push(SweepReading {
                sector,
                measurement: self.link.probe(rng, self.initiator, sector, self.responder),
            });
        }

        report_missing_probes("iss", &iss_readings);

        // The responder picks the initiator's sector ("Select Best Sector"
        // box of Fig. 2 — or our patched override).
        let initiator_tx_sector = responder_policy.select(&iss_readings);
        emit_sweep_decision("sls.iss", &iss_readings, initiator_tx_sector);
        let fb_to_initiator = feedback_field(initiator_tx_sector, &iss_readings);

        // --- Responder Sector Sweep (RSS) --------------------------------
        let full_r = self.responder.codebook.sweep_order();
        let rss_sectors = responder_policy.probe_sectors(&full_r);
        let rss_schedule = BurstSchedule::custom_sweep(&rss_sectors);
        let mut rss_readings = Vec::with_capacity(rss_sectors.len());
        for (cdown, sector) in rss_schedule.transmissions() {
            let frame = Frame::Ssw(SswFrame {
                ra: self.config.initiator_addr,
                ta: self.config.responder_addr,
                ssw: SswField {
                    direction: SweepDirection::Responder,
                    cdown,
                    sector_id: sector,
                    dmg_antenna_id: 0,
                    rxss_length: 0,
                },
                feedback: fb_to_initiator,
            });
            frames.push((now, frame));
            now += SSW_FRAME_TIME;
            rss_readings.push(SweepReading {
                sector,
                measurement: self.link.probe(rng, self.responder, sector, self.initiator),
            });
        }

        report_missing_probes("rss", &rss_readings);

        // The initiator picks the responder's sector and sends feedback;
        // the responder acknowledges. We account for both plus the sweep
        // initialization with the measured 49.1 µs overhead (§4.1).
        let responder_tx_sector = initiator_policy.select(&rss_readings);
        emit_sweep_decision("sls.rss", &rss_readings, responder_tx_sector);
        let fb_to_responder = feedback_field(responder_tx_sector, &rss_readings);
        frames.push((
            now,
            Frame::SswFeedback(SswFeedbackFrame {
                ra: self.config.responder_addr,
                ta: self.config.initiator_addr,
                feedback: fb_to_responder,
            }),
        ));
        frames.push((
            now,
            Frame::SswAck(SswAckFrame {
                ra: self.config.initiator_addr,
                ta: self.config.responder_addr,
                feedback: fb_to_initiator,
            }),
        ));
        now += SLS_OVERHEAD;

        obs::counter("sls.ssw_frames").add(frames.len() as u64);
        if let Some(span) = &mut span {
            span.field("iss_frames", iss_readings.len() as f64);
            span.field("rss_frames", rss_readings.len() as f64);
            span.field(
                "feedback_sector",
                initiator_tx_sector.map_or(-1.0, |s| f64::from(s.raw())),
            );
            span.field("sim_duration_us", now.since(SimTime::ZERO).as_ms() * 1000.0);
        }
        SlsOutcome {
            initiator_tx_sector,
            responder_tx_sector,
            iss_readings,
            rss_readings,
            frames,
            duration: now.since(SimTime::ZERO),
        }
    }
}

/// Emits the provenance record of one sweep-level selection: which sectors
/// were probed, what they measured, and what the policy fed back. These
/// records are pure provenance (`replayable = false`) — the kernel
/// intermediates belong to the CSS policy's own `css.select` record, which
/// follows under the same trace when the policy is compressive. Sink-gated:
/// without a sink, this is one atomic load.
fn emit_sweep_decision(source: &str, readings: &[SweepReading], chosen: Option<SectorId>) {
    if !obs::sink_active() {
        return;
    }
    let mut rec = obs::DecisionRecord::new(source);
    for r in readings {
        rec.push_probe(
            u64::from(r.sector.raw()),
            r.measurement.map(|m| (m.snr_db, m.rssi_dbm)),
        );
    }
    rec.chosen_sector = chosen.map_or(obs::decision::NO_SECTOR, |s| i64::from(s.raw()));
    obs::decision::emit(rec);
}

/// Flags probes that went on the air but produced no measurement (below
/// sensitivity, blockage, or a deaf receiver) as link-health anomalies.
fn report_missing_probes(sweep: &str, readings: &[SweepReading]) {
    let missing = readings.iter().filter(|r| r.measurement.is_none()).count();
    if missing > 0 {
        obs::health::anomaly(
            "missing_probe",
            &[
                ("missing", missing as f64),
                ("swept", readings.len() as f64),
                ("rss", f64::from(u8::from(sweep == "rss"))),
            ],
        );
    }
}

/// Builds the feedback field for a selection, reporting the selected
/// sector's SNR when available.
fn feedback_field(selection: Option<SectorId>, readings: &[SweepReading]) -> SswFeedbackField {
    let measured = selection.and_then(|sel| {
        readings
            .iter()
            .find(|r| r.sector == sel)
            .and_then(|r| r.measurement)
    });
    if let Some(m) = measured {
        // The wire format saturates outside [-8.0, 55.75] dB (see
        // `encode_snr`); a clamp means the peer sees a lie about the link.
        if !(-8.0..=55.75).contains(&m.snr_db) {
            obs::health::anomaly(
                "snr_clamped",
                &[
                    ("snr_db", m.snr_db),
                    ("sector", selection.map_or(-1.0, |s| f64::from(s.raw()))),
                ],
            );
        }
    }
    let snr = measured.map(|m| m.snr_db).unwrap_or(-8.0);
    SswFeedbackField {
        sector_select: selection.unwrap_or(SectorId(0)),
        dmg_antenna_select: 0,
        snr_report: encode_snr(snr),
        poll_required: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;
    use talon_channel::Environment;

    fn setup() -> (Link, Device, Device) {
        (
            Link::new(Environment::anechoic(3.0)),
            Device::talon(1),
            Device::talon(2),
        )
    }

    #[test]
    fn full_sweep_duration_matches_fig10() {
        let (link, ini, res) = setup();
        let runner = SlsRunner::new(&link, &ini, &res);
        let mut rng = sub_rng(1, "sls");
        let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy);
        // 2×34 frames à 18 µs + 49.1 µs = 1273.1 µs ≈ 1.27 ms.
        assert!((out.duration.as_ms() - 1.2731).abs() < 1e-9);
        assert_eq!(out.iss_readings.len(), 34);
        assert_eq!(out.rss_readings.len(), 34);
    }

    #[test]
    fn outcome_selects_usable_sectors() {
        let (link, ini, res) = setup();
        let runner = SlsRunner::new(&link, &ini, &res);
        let mut rng = sub_rng(2, "sls");
        let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy);
        let i_sec = out.initiator_tx_sector.expect("initiator sector chosen");
        let r_sec = out.responder_tx_sector.expect("responder sector chosen");
        // Devices face each other: the chosen sectors must have healthy SNR.
        let rxw = res.codebook.rx_sector().weights.clone();
        let snr = link.true_snr_db(&ini, i_sec, &res, &rxw);
        assert!(snr > 3.0, "selected initiator sector SNR {snr}");
        let rxw = ini.codebook.rx_sector().weights.clone();
        let snr = link.true_snr_db(&res, r_sec, &ini, &rxw);
        assert!(snr > 3.0, "selected responder sector SNR {snr}");
    }

    #[test]
    fn frame_transcript_is_well_formed() {
        let (link, ini, res) = setup();
        let runner = SlsRunner::new(&link, &ini, &res);
        let mut rng = sub_rng(3, "sls");
        let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy);
        // 34 ISS + 34 RSS + feedback + ack.
        assert_eq!(out.frames.len(), 70);
        // Times are monotonically non-decreasing and every frame re-decodes
        // from its wire representation.
        let mut last = SimTime::ZERO;
        for (t, f) in &out.frames {
            assert!(*t >= last);
            last = *t;
            assert_eq!(Frame::decode(&f.encode()), Some(*f));
        }
        // The last two frames are feedback + ack.
        assert!(matches!(out.frames[68].1, Frame::SswFeedback(_)));
        assert!(matches!(out.frames[69].1, Frame::SswAck(_)));
    }

    #[test]
    fn rss_frames_echo_the_initiator_selection() {
        let (link, ini, res) = setup();
        let runner = SlsRunner::new(&link, &ini, &res);
        let mut rng = sub_rng(4, "sls");
        let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy);
        let selected = out.initiator_tx_sector.unwrap();
        for (_, f) in &out.frames {
            if let Frame::Ssw(s) = f {
                if s.ssw.direction == SweepDirection::Responder {
                    assert_eq!(s.feedback.sector_select, selected);
                }
            }
        }
    }

    #[test]
    fn subset_probing_policy_shortens_training() {
        struct Subset;
        impl FeedbackPolicy for Subset {
            fn probe_sectors(&mut self, full: &[SectorId]) -> Vec<SectorId> {
                full.iter().copied().take(14).collect()
            }
            fn select(&mut self, readings: &[SweepReading]) -> Option<SectorId> {
                MaxSnrPolicy.select(readings)
            }
        }
        let (link, ini, res) = setup();
        let runner = SlsRunner::new(&link, &ini, &res);
        let mut rng = sub_rng(5, "sls");
        let out = runner.run(&mut rng, &mut Subset, &mut Subset);
        assert_eq!(out.iss_readings.len(), 14);
        // 2×14×18 + 49.1 = 553.1 µs ≈ 0.55 ms (Fig. 10).
        assert!((out.duration.as_ms() - 0.5531).abs() < 1e-9);
    }

    #[test]
    fn missing_probes_and_clamped_snr_raise_health_counters() {
        let before = obs::global().snapshot().counter("health.missing_probe");
        report_missing_probes(
            "iss",
            &[SweepReading {
                sector: SectorId(1),
                measurement: None,
            }],
        );
        assert_eq!(
            obs::global().snapshot().counter("health.missing_probe"),
            before + 1
        );

        let before = obs::global().snapshot().counter("health.snr_clamped");
        feedback_field(
            Some(SectorId(2)),
            &[SweepReading {
                sector: SectorId(2),
                measurement: Some(talon_channel::Measurement {
                    snr_db: 60.0, // above the 55.75 dB wire ceiling
                    rssi_dbm: -30.0,
                }),
            }],
        );
        assert_eq!(
            obs::global().snapshot().counter("health.snr_clamped"),
            before + 1
        );
        // An in-range SNR must not be flagged.
        let before = obs::global().snapshot().counter("health.snr_clamped");
        feedback_field(
            Some(SectorId(2)),
            &[SweepReading {
                sector: SectorId(2),
                measurement: Some(talon_channel::Measurement {
                    snr_db: 12.0,
                    rssi_dbm: -55.0,
                }),
            }],
        );
        assert_eq!(
            obs::global().snapshot().counter("health.snr_clamped"),
            before
        );
    }

    #[test]
    fn sls_run_emits_iss_and_rss_sweep_decisions() {
        let _guard = obs::testing::lock();
        let (link, ini, res) = setup();
        let runner = SlsRunner::new(&link, &ini, &res);
        let mut rng = sub_rng(7, "sls-decisions");
        let mem = std::sync::Arc::new(obs::MemorySink::new());
        obs::set_sink(mem.clone());
        let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy);
        obs::clear_sink();
        let decisions = mem.take_decisions();
        assert_eq!(decisions.len(), 2);
        let iss = &decisions[0];
        assert_eq!(iss.source, "sls.iss");
        assert!(!iss.replayable, "sweep records are pure provenance");
        assert_eq!(iss.probed.len(), out.iss_readings.len());
        assert_eq!(
            iss.chosen_sector,
            out.initiator_tx_sector.map_or(-1, |s| i64::from(s.raw()))
        );
        let rss = &decisions[1];
        assert_eq!(rss.source, "sls.rss");
        assert_eq!(
            rss.chosen_sector,
            out.responder_tx_sector.map_or(-1, |s| i64::from(s.raw()))
        );
    }

    #[test]
    fn max_snr_policy_ignores_missing_measurements() {
        let readings = vec![
            SweepReading {
                sector: SectorId(1),
                measurement: None,
            },
            SweepReading {
                sector: SectorId(2),
                measurement: Some(talon_channel::Measurement {
                    snr_db: 3.0,
                    rssi_dbm: -60.0,
                }),
            },
        ];
        assert_eq!(MaxSnrPolicy.select(&readings), Some(SectorId(2)));
        let empty: Vec<SweepReading> = vec![SweepReading {
            sector: SectorId(1),
            measurement: None,
        }];
        assert_eq!(MaxSnrPolicy.select(&empty), None);
    }
}
