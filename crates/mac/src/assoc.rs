//! Network bring-up: beacon discovery and A-BFT association.
//!
//! §4.1: "As Access points (APs) do not know the best sectors to advertise
//! their existence to potential clients, they periodically transmit beacon
//! frames successively over multiple sectors." A joining station listens
//! quasi-omni, learns the AP's best transmit sector from the strongest
//! decoded beacon, then answers in an A-BFT slot with its own responder
//! sweep so the AP can pick the station's sector.
//!
//! [`associate`] runs that whole discovery + initial-beamforming flow over
//! the channel simulator and reports which sector pair the link starts on
//! and how long bring-up took.

use crate::addr::MacAddr;
use crate::bti::{AbftConfig, AbftSlots, BeaconScheduler};
use crate::sls::FeedbackPolicy;
use crate::sls::MaxSnrPolicy;
use crate::timing::{SimDuration, BEACON_INTERVAL};
use rand::Rng;
use talon_array::SectorId;
use talon_channel::{Device, Link, SweepReading};

/// Outcome of a bring-up attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationOutcome {
    /// The AP transmit sector the station selected from the beacons.
    pub ap_tx_sector: SectorId,
    /// The station transmit sector the AP selected from the A-BFT sweep.
    pub sta_tx_sector: SectorId,
    /// Beacon intervals consumed (≥ 1; collisions add intervals).
    pub beacon_intervals: u64,
    /// Total bring-up time.
    pub duration: SimDuration,
    /// Number of beacons the station actually decoded in the final
    /// interval.
    pub beacons_decoded: usize,
}

/// Errors during bring-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssociationError {
    /// The station never decoded a beacon (devices out of range or facing
    /// away).
    NoBeaconDecoded,
    /// The AP received no usable A-BFT sweep.
    AbftFailed,
}

impl std::fmt::Display for AssociationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssociationError::NoBeaconDecoded => write!(f, "no beacon decoded"),
            AssociationError::AbftFailed => write!(f, "A-BFT sweep yielded no selection"),
        }
    }
}

impl std::error::Error for AssociationError {}

/// Runs discovery + A-BFT between an AP and one joining station.
///
/// `contending_stations` simulates other stations drawing A-BFT slots: a
/// slot collision costs a full extra beacon interval, which is how dense
/// deployments inflate bring-up latency (§7).
pub fn associate<R: Rng>(
    rng: &mut R,
    link: &Link,
    ap: &Device,
    ap_addr: MacAddr,
    sta: &Device,
    sta_addr: MacAddr,
    contending_stations: usize,
) -> Result<AssociationOutcome, AssociationError> {
    let mut scheduler = BeaconScheduler::new(ap_addr);
    let abft = AbftConfig::default();
    let max_intervals = 16;

    for _ in 0..max_intervals {
        // --- BTI: the AP beacons over its schedule; the station listens
        // quasi-omni and records what decodes.
        let burst = scheduler.next_interval();
        let mut readings: Vec<SweepReading> = Vec::with_capacity(burst.len());
        for beacon in &burst {
            let sector = beacon.frame.ssw.sector_id;
            readings.push(SweepReading {
                sector,
                measurement: link.probe(rng, ap, sector, sta),
            });
        }
        let decoded = readings.iter().filter(|r| r.measurement.is_some()).count();
        let Some(ap_tx_sector) = MaxSnrPolicy.select(&readings) else {
            continue; // nothing decoded this interval; keep listening
        };

        // --- A-BFT: draw a slot among the contenders.
        let mut slots = AbftSlots::new();
        let _ = slots.draw(rng, sta_addr, &abft);
        for i in 0..contending_stations {
            let _ = slots.draw(rng, MacAddr::device(1000 + i as u16), &abft);
        }
        if !slots.winners().contains(&sta_addr) {
            continue; // collided; retry next beacon interval
        }

        // The station sweeps its sectors in its slot (responder sweep,
        // bounded by the slot's frame budget); the AP picks the best.
        let sweep_order = sta.codebook.sweep_order();
        let budget = (abft.frames_per_slot as usize).min(sweep_order.len());
        // Real stations sweep in schedule order across intervals; one slot
        // carries the first `budget` sectors — enough for selection when
        // the codebook's fan covers the frontal range early.
        let swept: Vec<SectorId> = sweep_order.into_iter().take(budget).collect();
        let abft_readings = link.sweep(rng, sta, &swept, ap);
        let Some(sta_tx_sector) = MaxSnrPolicy.select(&abft_readings) else {
            return Err(AssociationError::AbftFailed);
        };

        let intervals = scheduler.intervals();
        return Ok(AssociationOutcome {
            ap_tx_sector,
            sta_tx_sector,
            beacon_intervals: intervals,
            duration: BEACON_INTERVAL.times(intervals - 1)
                + SimDuration::from_us(burst.len() as f64 * 18.0)
                + abft.duration(),
            beacons_decoded: decoded,
        });
    }
    Err(AssociationError::NoBeaconDecoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;
    use talon_channel::Environment;

    fn setup() -> (Link, Device, Device) {
        (
            Link::new(Environment::lab()),
            Device::talon(1),
            Device::talon(2),
        )
    }

    #[test]
    fn facing_devices_associate_in_one_interval() {
        let (link, ap, sta) = setup();
        let mut rng = sub_rng(10, "assoc");
        let out = associate(
            &mut rng,
            &link,
            &ap,
            MacAddr::device(1),
            &sta,
            MacAddr::device(2),
            0,
        )
        .expect("association succeeds");
        assert_eq!(out.beacon_intervals, 1);
        assert!(out.beacons_decoded > 10, "most beacons decode at 3 m");
        // Selected sectors provide healthy links in both directions.
        let rxw = sta.codebook.rx_sector().weights.clone();
        assert!(link.true_snr_db(&ap, out.ap_tx_sector, &sta, &rxw) > 5.0);
        let rxw = ap.codebook.rx_sector().weights.clone();
        assert!(link.true_snr_db(&sta, out.sta_tx_sector, &ap, &rxw) > 0.0);
        // Bring-up fits in one interval's BTI + A-BFT.
        assert!(out.duration.as_ms() < 3.0, "{} ms", out.duration.as_ms());
    }

    #[test]
    fn contention_costs_extra_intervals() {
        let (link, ap, sta) = setup();
        // Average over seeds: with 7 contenders on 8 slots, collisions are
        // common and must push the mean interval count above the
        // collision-free case.
        let mut with_contention = 0.0;
        let mut without = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut rng = sub_rng(seed, "assoc-contention");
            let a = associate(
                &mut rng,
                &link,
                &ap,
                MacAddr::device(1),
                &sta,
                MacAddr::device(2),
                7,
            )
            .expect("associates eventually");
            with_contention += a.beacon_intervals as f64;
            let mut rng = sub_rng(seed, "assoc-free");
            let b = associate(
                &mut rng,
                &link,
                &ap,
                MacAddr::device(1),
                &sta,
                MacAddr::device(2),
                0,
            )
            .expect("associates");
            without += b.beacon_intervals as f64;
        }
        assert!(
            with_contention > without,
            "contention {with_contention} vs free {without}"
        );
        assert_eq!(without, runs as f64, "no collisions without contenders");
    }

    #[test]
    fn out_of_range_station_fails_cleanly() {
        let link = Link::new(Environment::anechoic(500.0));
        let ap = Device::talon(1);
        let sta = Device::talon(2);
        let mut rng = sub_rng(11, "assoc-far");
        let err = associate(
            &mut rng,
            &link,
            &ap,
            MacAddr::device(1),
            &sta,
            MacAddr::device(2),
            0,
        )
        .unwrap_err();
        assert_eq!(err, AssociationError::NoBeaconDecoded);
        assert!(err.to_string().contains("beacon"));
    }
}
