//! Monitor-mode capture — reproducing Table 1.
//!
//! §4.1: "We use the third device to capture all received beacon and
//! sector sweep frames by operating it in monitor mode … we captured the
//! sector IDs and the values of CDOWN and list them in Table 1."
//!
//! [`MonitorCapture`] plays that third device: it receives the raw bytes of
//! every frame a station transmits (subject to the same decode physics as
//! any receiver — frames sent on sectors pointing away from the monitor are
//! often missed, which is why the paper had to aggregate over many bursts
//! and positions), parses them, and aggregates a CDOWN → sector table per
//! burst kind.

use crate::addr::MacAddr;
use crate::fields::SswField;
use crate::frames::Frame;
use crate::schedule::{BurstKind, BurstSchedule};
use rand::Rng;
use std::collections::BTreeMap;
use talon_array::SectorId;
use talon_channel::{Device, Link};

/// Aggregated monitor observations.
#[derive(Debug, Clone, Default)]
pub struct MonitorCapture {
    /// Observed sector per CDOWN for beacon bursts.
    pub beacon_table: BTreeMap<u16, SectorId>,
    /// Observed sector per CDOWN for sweep bursts.
    pub sweep_table: BTreeMap<u16, SectorId>,
    /// Total frames captured.
    pub frames_captured: usize,
    /// Total frames that were transmitted but not decoded at the monitor.
    pub frames_missed: usize,
}

impl MonitorCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        MonitorCapture::default()
    }

    /// Lets the monitor listen to one burst transmitted by `tx` over
    /// `link` (the link whose receive end is the monitor device).
    ///
    /// For each scheduled transmission the physical reception is simulated;
    /// frames that decode are parsed *from their wire bytes* and their SSW
    /// field recorded.
    pub fn observe_burst<R: Rng>(
        &mut self,
        rng: &mut R,
        link: &Link,
        tx: &Device,
        monitor: &Device,
        schedule: &BurstSchedule,
    ) {
        for (cdown, sector) in schedule.transmissions() {
            // Physical reception at the monitor.
            if link.probe(rng, tx, sector, monitor).is_none() {
                self.frames_missed += 1;
                continue;
            }
            // Build what the station put on the air and parse it back,
            // exactly like tcpdump + Wireshark would.
            let ssw = SswField {
                direction: crate::fields::SweepDirection::Initiator,
                cdown,
                sector_id: sector,
                dmg_antenna_id: 0,
                rxss_length: 0,
            };
            let frame = match schedule.kind {
                BurstKind::Beacon => Frame::Beacon(crate::frames::DmgBeacon {
                    bssid: MacAddr::device(1),
                    timestamp_us: 0,
                    beacon_interval_tu: 100,
                    ssw,
                }),
                BurstKind::Sweep => Frame::Ssw(crate::frames::SswFrame {
                    ra: MacAddr::BROADCAST,
                    ta: MacAddr::device(1),
                    ssw,
                    feedback: crate::fields::SswFeedbackField {
                        sector_select: SectorId(0),
                        dmg_antenna_select: 0,
                        snr_report: 0,
                        poll_required: false,
                    },
                }),
            };
            let wire = frame.encode();
            let Some(parsed) = Frame::decode(&wire) else {
                self.frames_missed += 1;
                continue;
            };
            let observed = match parsed {
                Frame::Beacon(b) => (BurstKind::Beacon, b.ssw),
                Frame::Ssw(s) => (BurstKind::Sweep, s.ssw),
                _ => continue,
            };
            self.frames_captured += 1;
            let table = match observed.0 {
                BurstKind::Beacon => &mut self.beacon_table,
                BurstKind::Sweep => &mut self.sweep_table,
            };
            table.insert(observed.1.cdown, observed.1.sector_id);
        }
    }

    /// Renders the capture as the two rows of Table 1: for each CDOWN from
    /// `max_cdown` down to 0, the observed sector or `None`.
    pub fn table_rows(&self, max_cdown: u16) -> (Vec<Option<SectorId>>, Vec<Option<SectorId>>) {
        let row = |t: &BTreeMap<u16, SectorId>| {
            (0..=max_cdown)
                .rev()
                .map(|c| t.get(&c).copied())
                .collect::<Vec<_>>()
        };
        (row(&self.beacon_table), row(&self.sweep_table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;
    use talon_channel::Environment;

    /// Captures many bursts from close range, as the paper does with three
    /// devices "in close proximity".
    fn capture_many() -> MonitorCapture {
        let link = Link::new(Environment::anechoic(1.0));
        let ap = Device::talon(1);
        let monitor = Device::talon(3);
        let mut cap = MonitorCapture::new();
        let mut rng = sub_rng(42, "capture");
        let beacon = BurstSchedule::talon_beacon();
        let sweep = BurstSchedule::talon_sweep();
        for _ in 0..60 {
            cap.observe_burst(&mut rng, &link, &ap, &monitor, &beacon);
            cap.observe_burst(&mut rng, &link, &ap, &monitor, &sweep);
        }
        cap
    }

    #[test]
    fn capture_reconstructs_table1() {
        let cap = capture_many();
        // Strong, frequently-transmitted slots must be observed with the
        // correct sector IDs.
        assert_eq!(cap.beacon_table.get(&33), Some(&SectorId(63)));
        assert_eq!(cap.beacon_table.get(&31), Some(&SectorId(1)));
        assert_eq!(cap.sweep_table.get(&34), Some(&SectorId(1)));
        assert_eq!(cap.sweep_table.get(&0), Some(&SectorId(63)));
        // Unused slots never show a frame.
        assert!(!cap.beacon_table.contains_key(&34));
        assert!(!cap.beacon_table.contains_key(&32));
        assert!(!cap.beacon_table.contains_key(&0));
        assert!(!cap.sweep_table.contains_key(&3));
    }

    #[test]
    fn low_gain_sectors_are_often_missed() {
        let cap = capture_many();
        assert!(cap.frames_missed > 0, "defective sectors drop frames");
        assert!(cap.frames_captured > cap.frames_missed);
    }

    #[test]
    fn table_rows_have_full_width() {
        let cap = capture_many();
        let (beacon, sweep) = cap.table_rows(34);
        assert_eq!(beacon.len(), 35);
        assert_eq!(sweep.len(), 35);
        // Row is ordered CDOWN 34 → 0.
        assert_eq!(beacon[1], Some(SectorId(63))); // CDOWN 33
        assert_eq!(sweep[0], Some(SectorId(1))); // CDOWN 34
    }
}
