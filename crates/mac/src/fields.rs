//! Bit-exact SSW and SSW-Feedback fields.
//!
//! These are the two fields the paper's firmware patches read and overwrite
//! (Fig. 2): the SSW field carries the transmitted sector ID and the CDOWN
//! countdown analysed in Table 1; the SSW-Feedback field carries the sector
//! the peer selected for us — the exact field the compressive selection
//! overwrites via the WMI hook.
//!
//! Layouts follow IEEE 802.11-2016 (Figs. 9-462/9-464). Bits are packed
//! LSB-first into little-endian octets, as on the air.

use serde::{Deserialize, Serialize};
use talon_array::SectorId;

/// Who is transmitting this SSW frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepDirection {
    /// Transmitted by the beamforming initiator (ISS).
    Initiator,
    /// Transmitted by the beamforming responder (RSS).
    Responder,
}

/// The 24-bit SSW field.
///
/// | bits  | field          |
/// |-------|----------------|
/// | B0    | Direction      |
/// | B1–9  | CDOWN          |
/// | B10–15| Sector ID      |
/// | B16–17| DMG Antenna ID |
/// | B18–23| RXSS Length    |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SswField {
    /// Sweep direction.
    pub direction: SweepDirection,
    /// Remaining frames in the burst (decreasing counter, 9 bits).
    pub cdown: u16,
    /// Sector used to transmit this frame (6 bits).
    pub sector_id: SectorId,
    /// Which DMG antenna is transmitting (2 bits; the Talon has one).
    pub dmg_antenna_id: u8,
    /// Length of a requested receive sweep (6 bits; 0 = none — the Talon
    /// never trains receive sectors, §4.1).
    pub rxss_length: u8,
}

impl SswField {
    /// Encodes into 3 octets.
    ///
    /// # Panics
    /// Panics if a field exceeds its bit width.
    pub fn encode(&self) -> [u8; 3] {
        assert!(self.cdown < 512, "CDOWN is 9 bits");
        assert!(self.sector_id.raw() < 64, "sector ID is 6 bits");
        assert!(self.dmg_antenna_id < 4, "antenna ID is 2 bits");
        assert!(self.rxss_length < 64, "RXSS length is 6 bits");
        let dir_bit = match self.direction {
            SweepDirection::Initiator => 0u32,
            SweepDirection::Responder => 1u32,
        };
        let v: u32 = dir_bit
            | (self.cdown as u32) << 1
            | (self.sector_id.raw() as u32) << 10
            | (self.dmg_antenna_id as u32) << 16
            | (self.rxss_length as u32) << 18;
        [v as u8, (v >> 8) as u8, (v >> 16) as u8]
    }

    /// Decodes from 3 octets.
    pub fn decode(b: &[u8; 3]) -> SswField {
        let v = b[0] as u32 | (b[1] as u32) << 8 | (b[2] as u32) << 16;
        SswField {
            direction: if v & 1 == 0 {
                SweepDirection::Initiator
            } else {
                SweepDirection::Responder
            },
            cdown: ((v >> 1) & 0x1FF) as u16,
            sector_id: SectorId(((v >> 10) & 0x3F) as u8),
            dmg_antenna_id: ((v >> 16) & 0x3) as u8,
            rxss_length: ((v >> 18) & 0x3F) as u8,
        }
    }
}

/// The 24-bit SSW-Feedback field (format used outside an ISS).
///
/// | bits  | field              |
/// |-------|--------------------|
/// | B0–5  | Sector Select      |
/// | B6–7  | DMG Antenna Select |
/// | B8–15 | SNR Report         |
/// | B16   | Poll Required      |
/// | B17–23| Reserved           |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SswFeedbackField {
    /// The sector the peer should use towards us — the field the paper's
    /// WMI hook overwrites.
    pub sector_select: SectorId,
    /// Antenna select (0 on the Talon).
    pub dmg_antenna_select: u8,
    /// SNR of the selected sector, encoded per [`encode_snr`].
    pub snr_report: u8,
    /// Poll-required flag.
    pub poll_required: bool,
}

impl SswFeedbackField {
    /// Encodes into 3 octets.
    pub fn encode(&self) -> [u8; 3] {
        assert!(self.sector_select.raw() < 64, "sector select is 6 bits");
        assert!(self.dmg_antenna_select < 4, "antenna select is 2 bits");
        let v: u32 = self.sector_select.raw() as u32
            | (self.dmg_antenna_select as u32) << 6
            | (self.snr_report as u32) << 8
            | (self.poll_required as u32) << 16;
        [v as u8, (v >> 8) as u8, (v >> 16) as u8]
    }

    /// Decodes from 3 octets.
    pub fn decode(b: &[u8; 3]) -> SswFeedbackField {
        let v = b[0] as u32 | (b[1] as u32) << 8 | (b[2] as u32) << 16;
        SswFeedbackField {
            sector_select: SectorId((v & 0x3F) as u8),
            dmg_antenna_select: ((v >> 6) & 0x3) as u8,
            snr_report: ((v >> 8) & 0xFF) as u8,
            poll_required: (v >> 16) & 1 != 0,
        }
    }
}

/// Encodes an SNR in dB into the 8-bit SNR Report representation:
/// −8 dB ↦ 0, quarter-dB steps, saturating at 55.75 dB ↦ 255.
///
/// This standard encoding is exactly the quarter-dB granularity the paper
/// observes in the Talon firmware's reports (§4.3).
pub fn encode_snr(snr_db: f64) -> u8 {
    (((snr_db + 8.0) * 4.0).round().clamp(0.0, 255.0)) as u8
}

/// Decodes an 8-bit SNR Report back to dB.
pub fn decode_snr(report: u8) -> f64 {
    report as f64 / 4.0 - 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssw_field_roundtrip() {
        let f = SswField {
            direction: SweepDirection::Responder,
            cdown: 317,
            sector_id: SectorId(61),
            dmg_antenna_id: 2,
            rxss_length: 33,
        };
        assert_eq!(SswField::decode(&f.encode()), f);
    }

    #[test]
    fn ssw_field_known_bytes() {
        // Initiator, CDOWN=1, sector 2, antenna 0, rxss 0:
        // bits: dir=0, cdown=1 at B1 → byte0 = 0b0000_0010;
        // sector 2 at B10 → bits 10..16 = 2 → byte1 = 0b0000_1000.
        let f = SswField {
            direction: SweepDirection::Initiator,
            cdown: 1,
            sector_id: SectorId(2),
            dmg_antenna_id: 0,
            rxss_length: 0,
        };
        assert_eq!(f.encode(), [0x02, 0x08, 0x00]);
    }

    #[test]
    fn ssw_field_max_values() {
        let f = SswField {
            direction: SweepDirection::Responder,
            cdown: 511,
            sector_id: SectorId(63),
            dmg_antenna_id: 3,
            rxss_length: 63,
        };
        assert_eq!(f.encode(), [0xFF, 0xFF, 0xFF]);
        assert_eq!(SswField::decode(&[0xFF, 0xFF, 0xFF]), f);
    }

    #[test]
    #[should_panic(expected = "CDOWN is 9 bits")]
    fn oversized_cdown_panics() {
        SswField {
            direction: SweepDirection::Initiator,
            cdown: 512,
            sector_id: SectorId(1),
            dmg_antenna_id: 0,
            rxss_length: 0,
        }
        .encode();
    }

    #[test]
    fn feedback_field_roundtrip() {
        let f = SswFeedbackField {
            sector_select: SectorId(14),
            dmg_antenna_select: 1,
            snr_report: encode_snr(9.25),
            poll_required: true,
        };
        let d = SswFeedbackField::decode(&f.encode());
        assert_eq!(d, f);
        assert_eq!(decode_snr(d.snr_report), 9.25);
    }

    #[test]
    fn feedback_known_bytes() {
        // sector 63, antenna 0, snr_report 0, no poll → byte0 = 0x3F.
        let f = SswFeedbackField {
            sector_select: SectorId(63),
            dmg_antenna_select: 0,
            snr_report: 0,
            poll_required: false,
        };
        assert_eq!(f.encode(), [0x3F, 0x00, 0x00]);
    }

    #[test]
    fn snr_encoding_matches_talon_range() {
        assert_eq!(encode_snr(-8.0), 0);
        assert_eq!(encode_snr(-20.0), 0, "saturates low");
        assert_eq!(encode_snr(0.0), 32);
        assert_eq!(encode_snr(12.0), 80);
        assert_eq!(encode_snr(100.0), 255, "saturates high");
        assert_eq!(decode_snr(encode_snr(7.25)), 7.25, "quarter dB exact");
    }
}
