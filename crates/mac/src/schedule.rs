//! Beacon and sweep slot schedules (Table 1).
//!
//! The paper captures which sector the Talon transmits at each CDOWN value
//! during beaconing and sweeping (Table 1):
//!
//! * **Beacon** bursts use CDOWN 33 for sector 63, then CDOWN 31…1 for
//!   sectors 1…31; CDOWN 34, 32 and 0 are unused slots in which no frame is
//!   ever observed.
//! * **Sweep** bursts use CDOWN 34…4 for sectors 1…31, skip CDOWN 3, then
//!   CDOWN 2, 1, 0 for sectors 61, 62, 63.
//!
//! A schedule is an ordered list of `(cdown, Option<SectorId>)` slots; the
//! transmitter walks it top-down, skipping `None` slots (which is why the
//! monitor never sees frames there).

use serde::{Deserialize, Serialize};
use talon_array::SectorId;

/// Which burst type a schedule describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstKind {
    /// DMG Beacon burst (BTI).
    Beacon,
    /// Sector sweep burst (SLS).
    Sweep,
}

/// An ordered transmission schedule: CDOWN slots from the maximum down to
/// zero, each either carrying a sector or unused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstSchedule {
    /// The burst type.
    pub kind: BurstKind,
    /// `(cdown, sector)` slots, in descending CDOWN order.
    pub slots: Vec<(u16, Option<SectorId>)>,
}

impl BurstSchedule {
    /// The Talon's beacon schedule (Table 1, "Beacon" row).
    pub fn talon_beacon() -> Self {
        let mut slots: Vec<(u16, Option<SectorId>)> = Vec::with_capacity(35);
        slots.push((34, None));
        slots.push((33, Some(SectorId(63))));
        slots.push((32, None));
        for i in 0..31u16 {
            // CDOWN 31 → sector 1, …, CDOWN 1 → sector 31.
            slots.push((31 - i, Some(SectorId(i as u8 + 1))));
        }
        slots.push((0, None));
        BurstSchedule {
            kind: BurstKind::Beacon,
            slots,
        }
    }

    /// The Talon's sweep schedule (Table 1, "Sweep" row).
    pub fn talon_sweep() -> Self {
        let mut slots: Vec<(u16, Option<SectorId>)> = Vec::with_capacity(35);
        for i in 0..31u16 {
            // CDOWN 34 → sector 1, …, CDOWN 4 → sector 31.
            slots.push((34 - i, Some(SectorId(i as u8 + 1))));
        }
        slots.push((3, None));
        slots.push((2, Some(SectorId(61))));
        slots.push((1, Some(SectorId(62))));
        slots.push((0, Some(SectorId(63))));
        BurstSchedule {
            kind: BurstKind::Sweep,
            slots,
        }
    }

    /// A custom sweep over an arbitrary sector list (used by the
    /// compressive selection, which probes a subset): CDOWN counts down
    /// from `len-1` to 0 with no unused slots.
    pub fn custom_sweep(sectors: &[SectorId]) -> Self {
        let n = sectors.len() as u16;
        BurstSchedule {
            kind: BurstKind::Sweep,
            slots: sectors
                .iter()
                .enumerate()
                .map(|(i, &s)| (n - 1 - i as u16, Some(s)))
                .collect(),
        }
    }

    /// The transmitted `(cdown, sector)` pairs, in order (skipping unused
    /// slots).
    pub fn transmissions(&self) -> impl Iterator<Item = (u16, SectorId)> + '_ {
        self.slots
            .iter()
            .filter_map(|&(cdown, s)| s.map(|sec| (cdown, sec)))
    }

    /// Number of frames actually transmitted in one burst.
    pub fn frame_count(&self) -> usize {
        self.transmissions().count()
    }

    /// The sector transmitted at a given CDOWN, if any.
    pub fn sector_at(&self, cdown: u16) -> Option<SectorId> {
        self.slots
            .iter()
            .find(|&&(c, _)| c == cdown)
            .and_then(|&(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_schedule_matches_table1() {
        let b = BurstSchedule::talon_beacon();
        assert_eq!(b.slots.len(), 35, "CDOWN 34..0");
        assert_eq!(b.sector_at(34), None);
        assert_eq!(b.sector_at(33), Some(SectorId(63)));
        assert_eq!(b.sector_at(32), None);
        assert_eq!(b.sector_at(31), Some(SectorId(1)));
        assert_eq!(b.sector_at(16), Some(SectorId(16)));
        assert_eq!(b.sector_at(1), Some(SectorId(31)));
        assert_eq!(b.sector_at(0), None);
        assert_eq!(b.frame_count(), 32, "63 plus 1..31");
    }

    #[test]
    fn sweep_schedule_matches_table1() {
        let s = BurstSchedule::talon_sweep();
        assert_eq!(s.sector_at(34), Some(SectorId(1)));
        assert_eq!(s.sector_at(4), Some(SectorId(31)));
        assert_eq!(s.sector_at(3), None);
        assert_eq!(s.sector_at(2), Some(SectorId(61)));
        assert_eq!(s.sector_at(1), Some(SectorId(62)));
        assert_eq!(s.sector_at(0), Some(SectorId(63)));
        assert_eq!(s.frame_count(), 34);
    }

    #[test]
    fn cdown_is_strictly_decreasing() {
        for sched in [BurstSchedule::talon_beacon(), BurstSchedule::talon_sweep()] {
            let cdowns: Vec<u16> = sched.slots.iter().map(|&(c, _)| c).collect();
            assert!(cdowns.windows(2).all(|w| w[0] > w[1]));
        }
    }

    #[test]
    fn custom_sweep_counts_down_to_zero() {
        let ids = [SectorId(5), SectorId(9), SectorId(61)];
        let s = BurstSchedule::custom_sweep(&ids);
        let tx: Vec<(u16, SectorId)> = s.transmissions().collect();
        assert_eq!(
            tx,
            vec![(2, SectorId(5)), (1, SectorId(9)), (0, SectorId(61))]
        );
        assert_eq!(s.frame_count(), 3);
    }

    #[test]
    fn sweep_covers_every_talon_tx_sector_once() {
        let s = BurstSchedule::talon_sweep();
        let mut ids: Vec<u8> = s.transmissions().map(|(_, id)| id.raw()).collect();
        ids.sort_unstable();
        let expected: Vec<u8> = (1..=31).chain(61..=63).collect();
        assert_eq!(ids, expected);
    }
}
