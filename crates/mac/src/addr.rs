//! MAC addresses.

use serde::{Deserialize, Serialize};

/// A 48-bit IEEE MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A deterministic locally-administered unicast address derived from a
    /// small device index (useful in tests and simulations).
    pub fn device(index: u16) -> MacAddr {
        let [hi, lo] = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x11, 0xad, 0x00, hi, lo])
    }

    /// Whether this is a group (multicast/broadcast) address.
    pub fn is_group(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_addresses_are_unique_and_unicast() {
        let a = MacAddr::device(1);
        let b = MacAddr::device(2);
        assert_ne!(a, b);
        assert!(!a.is_group());
        assert!(MacAddr::BROADCAST.is_group());
    }

    #[test]
    fn display_formats_colon_hex() {
        assert_eq!(MacAddr::device(0x1234).to_string(), "02:11:ad:00:12:34");
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }
}
