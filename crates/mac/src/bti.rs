//! Beacon Transmission Interval (BTI) and A-BFT scheduling.
//!
//! §4.1 of the paper observes the Talon's beaconing behaviour: "the AP
//! triggers beacons every 102.4 ms" over the sector schedule of Table 1,
//! and stations answer in the Association Beamforming Training (A-BFT)
//! period that follows. This module provides the AP-side beacon interval
//! machinery:
//!
//! * [`BeaconScheduler`] — emits timed, fully-encoded DMG beacons for
//!   every beacon interval, walking the Table 1 slot schedule with a TSF
//!   timestamp, and advertises the A-BFT structure.
//! * [`AbftConfig`] / [`AbftSlots`] — the slotted responder sweep window:
//!   stations pick a random slot and run their responder sector sweep
//!   towards the AP.
//!
//! Timing follows the standard: 1 TU = 1024 µs, beacon interval 100 TU.

use crate::addr::MacAddr;
use crate::fields::{SswField, SweepDirection};
use crate::frames::DmgBeacon;
use crate::schedule::BurstSchedule;
use crate::timing::{SimDuration, SimTime, BEACON_INTERVAL, SSW_FRAME_TIME};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A-BFT parameters advertised in the beacon (simplified to the fields the
/// sweep cares about).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbftConfig {
    /// Number of responder slots per A-BFT (the standard allows up to 8).
    pub slots: u8,
    /// SSW frames a responder may send per slot (FSS).
    pub frames_per_slot: u8,
}

impl Default for AbftConfig {
    fn default() -> Self {
        AbftConfig {
            slots: 8,
            frames_per_slot: 8,
        }
    }
}

impl AbftConfig {
    /// Duration of one A-BFT slot.
    pub fn slot_duration(&self) -> SimDuration {
        SSW_FRAME_TIME.times(self.frames_per_slot as u64)
    }

    /// Duration of the whole A-BFT period.
    pub fn duration(&self) -> SimDuration {
        self.slot_duration().times(self.slots as u64)
    }
}

/// One beacon transmission: when, and the full frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedBeacon {
    /// Transmit time.
    pub at: SimTime,
    /// The beacon frame (carries sector ID + CDOWN in its SSW field).
    pub frame: DmgBeacon,
}

/// AP-side scheduler: produces the beacon bursts of successive beacon
/// intervals.
#[derive(Debug, Clone)]
pub struct BeaconScheduler {
    /// BSSID used in all beacons.
    pub bssid: MacAddr,
    /// Slot schedule (Table 1 "Beacon" row for the Talon).
    pub schedule: BurstSchedule,
    /// A-BFT advertisement.
    pub abft: AbftConfig,
    /// Next beacon-interval start.
    next_bi: SimTime,
    /// Beacon intervals elapsed.
    intervals: u64,
}

impl BeaconScheduler {
    /// Creates a scheduler starting at simulation time zero.
    pub fn new(bssid: MacAddr) -> Self {
        BeaconScheduler {
            bssid,
            schedule: BurstSchedule::talon_beacon(),
            abft: AbftConfig::default(),
            next_bi: SimTime::ZERO,
            intervals: 0,
        }
    }

    /// Number of beacon intervals generated so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Start time of the A-BFT within the most recently generated interval.
    pub fn abft_start(&self) -> SimTime {
        // A-BFT directly follows the beacon burst.
        let burst = SSW_FRAME_TIME.times(self.schedule.frame_count() as u64);
        SimTime(self.next_bi.0 - BEACON_INTERVAL.0) + burst
    }

    /// Generates the next beacon interval's burst: one beacon per
    /// scheduled slot, 18 µs apart, TSF timestamps in microseconds.
    pub fn next_interval(&mut self) -> Vec<TimedBeacon> {
        let start = self.next_bi;
        let mut out = Vec::with_capacity(self.schedule.frame_count());
        let mut t = start;
        for (cdown, sector) in self.schedule.transmissions() {
            out.push(TimedBeacon {
                at: t,
                frame: DmgBeacon {
                    bssid: self.bssid,
                    timestamp_us: t.as_us() as u64,
                    beacon_interval_tu: 100,
                    ssw: SswField {
                        direction: SweepDirection::Initiator,
                        cdown,
                        sector_id: sector,
                        dmg_antenna_id: 0,
                        rxss_length: 0,
                    },
                },
            });
            t += SSW_FRAME_TIME;
        }
        self.next_bi = start + BEACON_INTERVAL;
        self.intervals += 1;
        out
    }
}

/// The slotted A-BFT contention: stations draw a random slot; stations
/// that pick the same slot collide and must retry in the next interval.
#[derive(Debug, Clone, Default)]
pub struct AbftSlots {
    /// `(station, slot)` picks of the current interval.
    picks: Vec<(MacAddr, u8)>,
}

impl AbftSlots {
    /// Creates an empty slot map.
    pub fn new() -> Self {
        AbftSlots::default()
    }

    /// A station draws a random slot for this A-BFT.
    pub fn draw<R: Rng>(&mut self, rng: &mut R, station: MacAddr, config: &AbftConfig) -> u8 {
        let slot = rng.gen_range(0..config.slots);
        self.picks.push((station, slot));
        slot
    }

    /// Stations whose slot nobody else picked (their responder sweep gets
    /// through); collided stations must retry next interval.
    pub fn winners(&self) -> Vec<MacAddr> {
        self.picks
            .iter()
            .filter(|(_, slot)| self.picks.iter().filter(|(_, s)| s == slot).count() == 1)
            .map(|&(sta, _)| sta)
            .collect()
    }

    /// Stations that collided.
    pub fn collided(&self) -> Vec<MacAddr> {
        self.picks
            .iter()
            .filter(|(_, slot)| self.picks.iter().filter(|(_, s)| s == slot).count() > 1)
            .map(|&(sta, _)| sta)
            .collect()
    }

    /// Clears the picks for the next interval.
    pub fn reset(&mut self) {
        self.picks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::Frame;
    use geom::rng::sub_rng;

    #[test]
    fn beacon_interval_spacing_is_102_4_ms() {
        let mut sched = BeaconScheduler::new(MacAddr::device(1));
        let b1 = sched.next_interval();
        let b2 = sched.next_interval();
        assert_eq!(sched.intervals(), 2);
        let dt = b2[0].at.since(b1[0].at);
        assert_eq!(dt, BEACON_INTERVAL);
    }

    #[test]
    fn burst_follows_table1_and_is_18us_spaced() {
        let mut sched = BeaconScheduler::new(MacAddr::device(1));
        let burst = sched.next_interval();
        assert_eq!(burst.len(), 32, "63 plus sectors 1..31");
        assert_eq!(burst[0].frame.ssw.sector_id, talon_array::SectorId(63));
        assert_eq!(burst[0].frame.ssw.cdown, 33);
        assert_eq!(burst[1].frame.ssw.sector_id, talon_array::SectorId(1));
        for w in burst.windows(2) {
            assert_eq!(w[1].at.since(w[0].at), SSW_FRAME_TIME);
        }
        // Beacons carry valid wire encodings.
        let f = Frame::Beacon(burst[5].frame);
        assert_eq!(Frame::decode(&f.encode()), Some(f));
    }

    #[test]
    fn timestamps_advance_with_the_tsf() {
        let mut sched = BeaconScheduler::new(MacAddr::device(1));
        let b1 = sched.next_interval();
        let b2 = sched.next_interval();
        assert!(b2[0].frame.timestamp_us > b1[0].frame.timestamp_us);
        assert_eq!(
            b2[0].frame.timestamp_us - b1[0].frame.timestamp_us,
            BEACON_INTERVAL.as_us() as u64
        );
    }

    #[test]
    fn abft_duration_matches_config() {
        let abft = AbftConfig::default();
        // 8 slots × 8 frames × 18 µs = 1152 µs.
        assert_eq!(abft.duration().as_us(), 1152.0);
        assert_eq!(abft.slot_duration().as_us(), 144.0);
    }

    #[test]
    fn abft_collisions_are_detected() {
        let config = AbftConfig {
            slots: 2,
            frames_per_slot: 8,
        };
        let mut slots = AbftSlots::new();
        let mut rng = sub_rng(3, "abft");
        // With 4 stations on 2 slots, someone must collide.
        for i in 0..4 {
            slots.draw(&mut rng, MacAddr::device(i), &config);
        }
        let winners = slots.winners();
        let collided = slots.collided();
        assert_eq!(winners.len() + collided.len(), 4);
        assert!(collided.len() >= 2, "pigeonhole collision");
        slots.reset();
        assert!(slots.winners().is_empty());
    }

    #[test]
    fn single_station_always_wins() {
        let config = AbftConfig::default();
        let mut slots = AbftSlots::new();
        let mut rng = sub_rng(4, "abft");
        let slot = slots.draw(&mut rng, MacAddr::device(9), &config);
        assert!(slot < config.slots);
        assert_eq!(slots.winners(), vec![MacAddr::device(9)]);
    }
}
