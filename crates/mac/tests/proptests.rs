//! Property-based tests for the 802.11ad frame layer.

use mac80211ad::addr::MacAddr;
use mac80211ad::crc::{append_fcs, check_and_strip_fcs, crc32};
use mac80211ad::fields::{decode_snr, encode_snr, SswFeedbackField, SswField, SweepDirection};
use mac80211ad::frames::{DmgBeacon, Frame, SswAckFrame, SswFeedbackFrame, SswFrame};
use proptest::prelude::*;
use talon_array::SectorId;

fn arb_ssw_field() -> impl Strategy<Value = SswField> {
    (any::<bool>(), 0u16..512, 0u8..64, 0u8..4, 0u8..64).prop_map(
        |(dir, cdown, sector, antenna, rxss)| SswField {
            direction: if dir {
                SweepDirection::Responder
            } else {
                SweepDirection::Initiator
            },
            cdown,
            sector_id: SectorId(sector),
            dmg_antenna_id: antenna,
            rxss_length: rxss,
        },
    )
}

fn arb_feedback() -> impl Strategy<Value = SswFeedbackField> {
    (0u8..64, 0u8..4, any::<u8>(), any::<bool>()).prop_map(|(sector, antenna, snr, poll)| {
        SswFeedbackField {
            sector_select: SectorId(sector),
            dmg_antenna_select: antenna,
            snr_report: snr,
            poll_required: poll,
        }
    })
}

fn arb_addr() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

proptest! {
    #[test]
    fn ssw_field_roundtrips(f in arb_ssw_field()) {
        prop_assert_eq!(SswField::decode(&f.encode()), f);
    }

    #[test]
    fn feedback_field_roundtrips(f in arb_feedback()) {
        prop_assert_eq!(SswFeedbackField::decode(&f.encode()), f);
    }

    #[test]
    fn snr_report_encoding_roundtrips_on_grid(steps in 0u16..256) {
        // Every representable value round-trips exactly.
        let db = steps as f64 / 4.0 - 8.0;
        prop_assert_eq!(decode_snr(encode_snr(db)), db);
    }

    #[test]
    fn snr_report_is_monotone(a in -20.0f64..60.0, b in -20.0f64..60.0) {
        prop_assume!(a <= b);
        prop_assert!(encode_snr(a) <= encode_snr(b));
    }

    #[test]
    fn all_frame_types_roundtrip(
        ssw in arb_ssw_field(),
        fb in arb_feedback(),
        ra in arb_addr(),
        ta in arb_addr(),
        ts in any::<u64>(),
        bi in any::<u16>(),
    ) {
        let frames = [
            Frame::Beacon(DmgBeacon { bssid: ta, timestamp_us: ts, beacon_interval_tu: bi, ssw }),
            Frame::Ssw(SswFrame { ra, ta, ssw, feedback: fb }),
            Frame::SswFeedback(SswFeedbackFrame { ra, ta, feedback: fb }),
            Frame::SswAck(SswAckFrame { ra, ta, feedback: fb }),
        ];
        for f in frames {
            let wire = f.encode();
            prop_assert_eq!(Frame::decode(&wire), Some(f));
        }
    }

    #[test]
    fn single_bit_corruption_is_always_detected(
        ssw in arb_ssw_field(),
        fb in arb_feedback(),
        ra in arb_addr(),
        ta in arb_addr(),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = Frame::Ssw(SswFrame { ra, ta, ssw, feedback: fb });
        let mut wire = frame.encode().to_vec();
        let idx = byte_sel.index(wire.len());
        wire[idx] ^= 1 << bit;
        prop_assert_eq!(Frame::decode(&wire), None, "bit flip at byte {} undetected", idx);
    }

    #[test]
    fn crc_differs_for_different_payloads(
        a in prop::collection::vec(any::<u8>(), 0..64),
        flip in any::<prop::sample::Index>(),
    ) {
        prop_assume!(!a.is_empty());
        let mut b = a.clone();
        let idx = flip.index(b.len());
        b[idx] ^= 0x01;
        prop_assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn fcs_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut framed = payload.clone();
        append_fcs(&mut framed);
        prop_assert_eq!(check_and_strip_fcs(&framed), Some(payload.as_slice()));
    }
}
