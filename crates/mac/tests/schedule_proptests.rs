//! Property-based tests for the burst schedules and the beacon interval.

use mac80211ad::addr::MacAddr;
use mac80211ad::bti::{AbftConfig, AbftSlots, BeaconScheduler};
use mac80211ad::schedule::BurstSchedule;
use mac80211ad::timing::BEACON_INTERVAL;
use proptest::prelude::*;
use talon_array::SectorId;

proptest! {
    #[test]
    fn custom_sweeps_count_down_without_gaps(
        ids in prop::collection::vec(1u8..32, 1..34),
    ) {
        let sectors: Vec<SectorId> = ids.iter().map(|&i| SectorId(i)).collect();
        let s = BurstSchedule::custom_sweep(&sectors);
        let tx: Vec<(u16, SectorId)> = s.transmissions().collect();
        prop_assert_eq!(tx.len(), sectors.len());
        // CDOWN starts at len-1 and reaches 0 with no gaps.
        for (k, &(cdown, sector)) in tx.iter().enumerate() {
            prop_assert_eq!(cdown as usize, sectors.len() - 1 - k);
            prop_assert_eq!(sector, sectors[k]);
        }
    }

    #[test]
    fn sector_at_agrees_with_transmissions(
        which in prop::sample::select(vec!["beacon", "sweep"]),
        cdown in 0u16..35,
    ) {
        let s = match which {
            "beacon" => BurstSchedule::talon_beacon(),
            _ => BurstSchedule::talon_sweep(),
        };
        let from_iter = s.transmissions().find(|&(c, _)| c == cdown).map(|(_, id)| id);
        prop_assert_eq!(s.sector_at(cdown), from_iter);
    }

    #[test]
    fn beacon_intervals_are_uniformly_spaced(n in 1usize..8) {
        let mut sched = BeaconScheduler::new(MacAddr::device(1));
        let mut bursts = Vec::new();
        for _ in 0..n {
            bursts.push(sched.next_interval());
        }
        for w in bursts.windows(2) {
            prop_assert_eq!(w[1][0].at.since(w[0][0].at), BEACON_INTERVAL);
        }
        // Every burst carries the same slot layout.
        for b in &bursts {
            prop_assert_eq!(b.len(), 32);
            prop_assert_eq!(b[0].frame.ssw.cdown, 33);
            prop_assert_eq!(b[0].frame.ssw.sector_id, SectorId(63));
        }
    }

    #[test]
    fn abft_winners_and_collided_partition_the_stations(
        n_stations in 1usize..12,
        slots in 1u8..8,
        seed in any::<u64>(),
    ) {
        let config = AbftConfig { slots, frames_per_slot: 8 };
        let mut ab = AbftSlots::new();
        let mut rng = geom::rng::sub_rng(seed, "prop-abft");
        for i in 0..n_stations {
            ab.draw(&mut rng, MacAddr::device(i as u16), &config);
        }
        let winners = ab.winners();
        let collided = ab.collided();
        prop_assert_eq!(winners.len() + collided.len(), n_stations);
        for w in &winners {
            prop_assert!(!collided.contains(w), "disjoint partition");
        }
        // With more stations than slots, someone must collide.
        if n_stations > slots as usize {
            prop_assert!(!collided.is_empty());
        }
    }
}
