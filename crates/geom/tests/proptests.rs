//! Property-based tests for the numeric substrate.

use geom::angle::{angular_dist, wrap_180, wrap_360};
use geom::db::DbQuantizer;
use geom::interp::{bilinear, fill_gaps_circular, fill_gaps_linear, lerp};
use geom::rng::{derive_seed, sample_indices, sub_rng};
use geom::sphere::{Direction, GridSpec, SphericalGrid};
use geom::stats::{quantile, BoxStats};
use geom::vector::{correlation_sq, masked_correlation_sq};
use proptest::prelude::*;

proptest! {
    #[test]
    fn wrap_180_lands_in_half_open_interval(deg in -1e6f64..1e6) {
        let w = wrap_180(deg);
        prop_assert!(w > -180.0 && w <= 180.0);
        // Idempotent.
        prop_assert!((wrap_180(w) - w).abs() < 1e-9);
        // Same direction modulo 360.
        prop_assert!(((deg - w) / 360.0 - ((deg - w) / 360.0).round()).abs() < 1e-6);
    }

    #[test]
    fn wrap_360_lands_in_interval(deg in -1e6f64..1e6) {
        let w = wrap_360(deg);
        prop_assert!((0.0..360.0).contains(&w));
    }

    #[test]
    fn angular_dist_is_a_metric(a in -720.0f64..720.0, b in -720.0f64..720.0, c in -720.0f64..720.0) {
        let dab = angular_dist(a, b);
        prop_assert!((0.0..=180.0).contains(&dab));
        prop_assert!((dab - angular_dist(b, a)).abs() < 1e-9, "symmetry");
        prop_assert!(angular_dist(a, a) < 1e-9, "identity");
        prop_assert!(angular_dist(a, c) <= dab + angular_dist(b, c) + 1e-9, "triangle");
    }

    #[test]
    fn quantile_is_bounded_and_monotone(
        mut xs in prop::collection::vec(-1e3f64..1e3, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let lo = q1.min(q2);
        let hi = q1.max(q2);
        let vlo = quantile(&xs, lo).unwrap();
        let vhi = quantile(&xs, hi).unwrap();
        prop_assert!(vlo <= vhi + 1e-9);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(vlo >= xs[0] - 1e-9 && vhi <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn box_stats_are_ordered(xs in prop::collection::vec(-1e3f64..1e3, 1..80)) {
        let b = BoxStats::from_samples(&xs).unwrap();
        prop_assert!(b.p005 <= b.q25 + 1e-9);
        prop_assert!(b.q25 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q75 + 1e-9);
        prop_assert!(b.q75 <= b.p995 + 1e-9);
        prop_assert_eq!(b.n, xs.len());
    }

    #[test]
    fn gap_filling_preserves_present_samples_and_bounds(
        samples in prop::collection::vec(prop::option::of(-50.0f64..50.0), 1..40),
        fallback in -10.0f64..10.0,
        circular in any::<bool>(),
    ) {
        let filled = if circular {
            fill_gaps_circular(&samples, fallback)
        } else {
            fill_gaps_linear(&samples, fallback)
        };
        prop_assert_eq!(filled.len(), samples.len());
        let present: Vec<f64> = samples.iter().flatten().copied().collect();
        for (i, s) in samples.iter().enumerate() {
            if let Some(v) = s {
                prop_assert!((filled[i] - v).abs() < 1e-12, "present samples unchanged");
            }
        }
        // Interpolated values stay within the hull of the present samples
        // (or equal the fallback when nothing is present).
        if present.is_empty() {
            prop_assert!(filled.iter().all(|&v| v == fallback));
        } else {
            let lo = present.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(filled.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
        }
    }

    #[test]
    fn lerp_is_bounded(a in -100.0f64..100.0, b in -100.0f64..100.0, t in 0.0f64..1.0) {
        let v = lerp(a, b, t);
        prop_assert!(v >= a.min(b) - 1e-9 && v <= a.max(b) + 1e-9);
    }

    #[test]
    fn bilinear_stays_within_table_hull(
        table in prop::collection::vec(-50.0f64..50.0, 12),
        r in -1.0f64..4.0,
        c in -1.0f64..5.0,
    ) {
        let v = bilinear(&table, 3, 4, r, c);
        let lo = table.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = table.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn direction_unit_vectors_are_unit(az in -180.0f64..180.0, el in -90.0f64..90.0) {
        let v = Direction::new(az, el).unit_vector();
        let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_roundtrip_for_all_indices(
        az_step in 0.5f64..20.0,
        el_step in 0.5f64..20.0,
    ) {
        let grid = SphericalGrid::new(
            GridSpec::new(-60.0, 60.0, az_step),
            GridSpec::new(0.0, 30.0, el_step),
        );
        for i in 0..grid.len() {
            let d = grid.direction(i);
            prop_assert_eq!(grid.nearest_index(&d), i);
        }
    }

    #[test]
    fn quantizer_output_is_in_range_and_idempotent(db in -50.0f64..50.0) {
        let q = DbQuantizer::TALON_SNR;
        let v = q.value(q.quantize(db));
        prop_assert!((q.min_db..=q.max_db).contains(&v));
        prop_assert_eq!(q.quantize(v), q.quantize(db).min(q.quantize(v)).max(q.quantize(v)));
        // Quantizing an already-quantized value is a fixed point.
        prop_assert_eq!(q.value(q.quantize(v)), v);
        // Error is at most half a step unless clamped.
        if db > q.min_db && db < q.max_db {
            prop_assert!((v - db).abs() <= q.step_db / 2.0 + 1e-12);
        }
    }

    #[test]
    fn correlation_sq_is_bounded_and_scale_invariant(
        u in prop::collection::vec(0.01f64..100.0, 2..20),
        k in 0.1f64..10.0,
    ) {
        let v: Vec<f64> = u.iter().rev().cloned().collect();
        let c = correlation_sq(&u, &v);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        let su: Vec<f64> = u.iter().map(|x| x * k).collect();
        prop_assert!((correlation_sq(&su, &v) - c).abs() < 1e-9);
        // Self correlation is 1.
        prop_assert!((correlation_sq(&u, &u) - 1.0).abs() < 1e-9);
        // Masked with all-true equals unmasked.
        let mask = vec![true; u.len()];
        prop_assert!((masked_correlation_sq(&u, &v, &mask) - c).abs() < 1e-9);
    }

    #[test]
    fn sample_indices_are_distinct_sorted_in_range(
        seed in any::<u64>(),
        n in 1usize..64,
    ) {
        let mut rng = sub_rng(seed, "prop");
        let m = n / 2 + 1;
        let s = sample_indices(&mut rng, n, m.min(n));
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn derive_seed_depends_on_both_inputs(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(a, "x"), derive_seed(b, "x"));
        prop_assert_ne!(derive_seed(a, "x"), derive_seed(a, "y"));
    }
}
