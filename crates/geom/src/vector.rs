//! Normalized vector correlation — the core math of Eq. 2.
//!
//! The compressive estimator correlates the vector of received signal
//! strengths `p` with the vector of expected gains `x(φ, θ)` of the probing
//! sectors:
//!
//! ```text
//! W(φ, θ) = ⟨ p/‖p‖ , x(φ,θ)/‖x(φ,θ)‖ ⟩²
//! ```
//!
//! Both vectors are normalized so only the *shape* across sectors matters,
//! not the absolute receive power — this is what makes the estimate
//! non-coherent and robust to distance changes.

/// Inner product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(u: &[f64], v: &[f64]) -> f64 {
    assert_eq!(u.len(), v.len(), "dot: length mismatch");
    u.iter().zip(v).map(|(a, b)| a * b).sum()
}

/// Euclidean norm of a slice.
pub fn norm(u: &[f64]) -> f64 {
    dot(u, u).sqrt()
}

/// The squared normalized correlation `⟨u/‖u‖, v/‖v‖⟩²` of Eq. 2.
///
/// Returns 0 when either vector has (numerically) zero norm, which happens
/// when no probing frame was received at all; a zero correlation keeps such
/// degenerate grid points out of the argmax rather than poisoning it with
/// NaN.
///
/// ```
/// use geom::vector::correlation_sq;
/// // Parallel vectors correlate perfectly regardless of scale.
/// assert!((correlation_sq(&[1.0, 2.0], &[10.0, 20.0]) - 1.0).abs() < 1e-12);
/// // Orthogonal vectors do not correlate.
/// assert!(correlation_sq(&[1.0, 0.0], &[0.0, 1.0]) < 1e-12);
/// ```
pub fn correlation_sq(u: &[f64], v: &[f64]) -> f64 {
    let nu = norm(u);
    let nv = norm(v);
    if nu <= f64::EPSILON || nv <= f64::EPSILON {
        return 0.0;
    }
    let c = dot(u, v) / (nu * nv);
    c * c
}

/// Masked variant of [`correlation_sq`]: entries where `mask[i]` is `false`
/// are excluded from both vectors.
///
/// This implements the paper's observation (§5) that compressive selection
/// "naturally compensates missing measurements": a probing frame the firmware
/// failed to report simply drops out of the correlation instead of entering
/// as a bogus zero.
pub fn masked_correlation_sq(u: &[f64], v: &[f64], mask: &[bool]) -> f64 {
    assert_eq!(u.len(), v.len(), "masked_correlation_sq: length mismatch");
    assert_eq!(u.len(), mask.len(), "masked_correlation_sq: mask mismatch");
    let mut uu = 0.0;
    let mut vv = 0.0;
    let mut uv = 0.0;
    for i in 0..u.len() {
        if mask[i] {
            uu += u[i] * u[i];
            vv += v[i] * v[i];
            uv += u[i] * v[i];
        }
    }
    if uu <= f64::EPSILON || vv <= f64::EPSILON {
        return 0.0;
    }
    let c = uv / (uu.sqrt() * vv.sqrt());
    c * c
}

/// Normalizes a slice in place to unit norm. Leaves an all-zero slice
/// untouched.
pub fn normalize_in_place(u: &mut [f64]) {
    let n = norm(u);
    if n > f64::EPSILON {
        for x in u.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn correlation_bounds() {
        let u = [0.3, 1.2, 0.8, 2.0];
        let v = [1.0, 0.1, 0.5, 1.5];
        let c = correlation_sq(&u, &v);
        assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    #[test]
    fn correlation_scale_invariant() {
        let u = [0.5, 1.5, 2.5];
        let v = [2.0, 1.0, 3.0];
        let scaled: Vec<f64> = u.iter().map(|x| x * 7.3).collect();
        assert!((correlation_sq(&u, &v) - correlation_sq(&scaled, &v)).abs() < 1e-12);
    }

    #[test]
    fn correlation_antiparallel_is_one() {
        // The square makes the sign irrelevant — Eq. 2 squares the inner
        // product, so anti-correlated shapes also score 1.
        assert!((correlation_sq(&[1.0, -1.0], &[-1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_correlation_is_zero() {
        assert_eq!(correlation_sq(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(correlation_sq(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn masked_correlation_ignores_missing() {
        let u = [1.0, 2.0, 999.0, 3.0];
        let v = [2.0, 4.0, 0.0, 6.0];
        let mask = [true, true, false, true];
        // With the outlier masked out, the remaining entries are parallel.
        assert!((masked_correlation_sq(&u, &v, &mask) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masked_correlation_all_masked_is_zero() {
        assert_eq!(masked_correlation_sq(&[1.0], &[1.0], &[false]), 0.0);
    }

    #[test]
    fn normalize_in_place_works() {
        let mut u = [3.0, 4.0];
        normalize_in_place(&mut u);
        assert!((norm(&u) - 1.0).abs() < 1e-12);
        let mut z = [0.0, 0.0];
        normalize_in_place(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }
}
