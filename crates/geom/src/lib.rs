//! Geometric and numeric substrate for the compressive sector selection
//! reproduction.
//!
//! This crate collects the small, well-tested building blocks that every
//! other crate in the workspace relies on:
//!
//! * [`angle`] — wrap-aware azimuth/elevation angle arithmetic in degrees.
//! * [`sphere`] — directions on the unit sphere and discrete angular grids
//!   (the `(φ, θ)` grid of the paper's Eq. 3 argmax).
//! * [`db`] — decibel/linear conversions and the quarter-dB quantizer used by
//!   the QCA9500 firmware's SNR reports.
//! * [`vector`] — normalized inner products (the correlation of Eq. 2).
//! * [`interp`] — circular linear interpolation and gap filling used when
//!   post-processing chamber measurements.
//! * [`stats`] — descriptive statistics (median, quantiles, the 50 %/99 %
//!   box-and-whisker summary of Fig. 7).
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible.
//!
//! The design follows the smoltcp school: no clever type-level machinery,
//! plain `f64` math, heavily documented, exhaustively unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod db;
pub mod interp;
pub mod rng;
pub mod sphere;
pub mod stats;
pub mod vector;

pub use angle::{wrap_180, wrap_360, AngleDeg};
pub use db::{db_to_linear, linear_to_db, QuantizedDb};
pub use sphere::{Direction, GridSpec, SphericalGrid};
pub use stats::BoxStats;
