//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the workspace (channel noise, measurement
//! outliers, probe subset sampling, …) draws from an explicitly seeded RNG.
//! To avoid correlated streams when one master seed fans out into many
//! components, seeds are derived with a SplitMix64 mix of the master seed and
//! a component label hash.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One round of the SplitMix64 output function: a high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label string, used to separate RNG streams by purpose.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives a child seed from a master seed and a component label.
///
/// Distinct labels produce statistically independent streams; the same
/// `(seed, label)` pair always produces the same stream.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    splitmix64(master ^ fnv1a(label))
}

/// Creates a deterministically seeded [`StdRng`] for a labelled component.
///
/// ```
/// use geom::rng::sub_rng;
/// use rand::Rng;
/// let mut a = sub_rng(42, "channel");
/// let mut b = sub_rng(42, "channel");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn sub_rng(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// Derives a child seed for the `index`-th unit of a labelled stream family.
///
/// This is the per-work-unit variant of [`derive_seed`] used by the parallel
/// evaluation engine: every Monte Carlo unit (a position × sweep × draw cell)
/// gets its own statistically independent stream keyed by `(master, label,
/// index)`, so results do not depend on which thread processes which unit or
/// in what order. The index is folded through a second SplitMix64 round
/// rather than a plain XOR so that consecutive indices land far apart.
pub fn derive_seed_indexed(master: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, label) ^ splitmix64(index))
}

/// Creates the deterministically seeded [`StdRng`] of the `index`-th unit of
/// a labelled stream family (see [`derive_seed_indexed`]).
///
/// ```
/// use geom::rng::sub_rng_indexed;
/// use rand::Rng;
/// let mut a = sub_rng_indexed(42, "fig7-subsets", 9);
/// let mut b = sub_rng_indexed(42, "fig7-subsets", 9);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn sub_rng_indexed(master: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(master, label, index))
}

/// Samples `m` distinct indices out of `0..n`, in ascending order.
///
/// This is the probe-subset draw of the compressive selection: "we take a
/// random subset of M out of N sectors" (§2.2). Ascending order makes the
/// probing order deterministic given the draw, which keeps sweep transcripts
/// reproducible.
///
/// # Panics
/// Panics if `m > n`.
pub fn sample_indices<R: Rng>(rng: &mut R, n: usize, m: usize) -> Vec<usize> {
    assert!(m <= n, "cannot sample {m} of {n} indices");
    let mut idx = rand::seq::index::sample(rng, n, m).into_vec();
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn sub_rng_streams_differ_by_label() {
        let mut a = sub_rng(7, "x");
        let mut b = sub_rng(7, "y");
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn indexed_seeds_are_deterministic_and_index_sensitive() {
        assert_eq!(
            derive_seed_indexed(1, "a", 5),
            derive_seed_indexed(1, "a", 5)
        );
        assert_ne!(
            derive_seed_indexed(1, "a", 5),
            derive_seed_indexed(1, "a", 6)
        );
        assert_ne!(
            derive_seed_indexed(1, "a", 5),
            derive_seed_indexed(1, "b", 5)
        );
        // Index 0 is not the plain labelled stream (splitmix64(0) != 0).
        assert_ne!(derive_seed_indexed(1, "a", 0), derive_seed(1, "a"));
    }

    #[test]
    fn sample_indices_properties() {
        let mut rng = sub_rng(3, "sample");
        for _ in 0..50 {
            let s = sample_indices(&mut rng, 34, 14);
            assert_eq!(s.len(), 14);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
            assert!(s.iter().all(|&i| i < 34));
        }
    }

    #[test]
    fn sample_indices_full_set() {
        let mut rng = sub_rng(3, "sample");
        let s = sample_indices(&mut rng, 5, 5);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_n_panics() {
        let mut rng = sub_rng(3, "sample");
        sample_indices(&mut rng, 3, 4);
    }
}
