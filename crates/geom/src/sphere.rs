//! Directions on the sphere and discrete angular grids.
//!
//! The paper estimates the angle of arrival by maximizing a correlation over
//! a discrete grid of azimuth `φ` and elevation `θ` (Eq. 3). [`SphericalGrid`]
//! is that grid; [`Direction`] is a single `(φ, θ)` pair.
//!
//! Conventions (matching the paper's measurement setup):
//! * azimuth `φ` ∈ `(-180°, 180°]`, `0°` is broadside of the antenna array;
//! * elevation `θ` ∈ `[-90°, 90°]`, `0°` is the horizontal plane, positive is
//!   up (the paper tilts the rotation head from 0° to 32.4°).

use crate::angle::{angular_dist, wrap_180};
use serde::{Deserialize, Serialize};

/// A direction on the unit sphere in antenna coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Direction {
    /// Azimuth in degrees, wrapped to `(-180, 180]`.
    pub az_deg: f64,
    /// Elevation in degrees, clamped to `[-90, 90]`.
    pub el_deg: f64,
}

impl Direction {
    /// Creates a direction, wrapping azimuth and clamping elevation.
    pub fn new(az_deg: f64, el_deg: f64) -> Self {
        Direction {
            az_deg: wrap_180(az_deg),
            el_deg: el_deg.clamp(-90.0, 90.0),
        }
    }

    /// The broadside direction `(0°, 0°)`.
    pub const BROADSIDE: Direction = Direction {
        az_deg: 0.0,
        el_deg: 0.0,
    };

    /// Unit vector in Cartesian antenna coordinates.
    ///
    /// `x` points broadside (az 0, el 0), `y` to azimuth +90°, `z` up.
    pub fn unit_vector(&self) -> [f64; 3] {
        let az = self.az_deg.to_radians();
        let el = self.el_deg.to_radians();
        [el.cos() * az.cos(), el.cos() * az.sin(), el.sin()]
    }

    /// Great-circle angular distance to another direction, in degrees.
    ///
    /// ```
    /// use geom::sphere::Direction;
    /// let a = Direction::new(0.0, 0.0);
    /// let b = Direction::new(90.0, 0.0);
    /// assert!((a.angle_to(&b) - 90.0).abs() < 1e-9);
    /// ```
    pub fn angle_to(&self, other: &Direction) -> f64 {
        let u = self.unit_vector();
        let v = other.unit_vector();
        let dot: f64 = u.iter().zip(&v).map(|(a, b)| a * b).sum();
        dot.clamp(-1.0, 1.0).acos().to_degrees()
    }

    /// Component-wise angular error `(azimuth, elevation)` against a ground
    /// truth, both in degrees and non-negative.
    ///
    /// This is the error metric of Fig. 7, which treats azimuth and elevation
    /// independently because they were measured with different resolution.
    pub fn component_error(&self, truth: &Direction) -> (f64, f64) {
        (
            angular_dist(self.az_deg, truth.az_deg),
            (self.el_deg - truth.el_deg).abs(),
        )
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(az {:.2}°, el {:.2}°)", self.az_deg, self.el_deg)
    }
}

/// Specification of one angular axis of a grid: inclusive start/end with a
/// fixed step (all degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// First sample in degrees.
    pub start_deg: f64,
    /// Last sample in degrees (inclusive; the actual last sample is the
    /// largest `start + k*step <= end + eps`).
    pub end_deg: f64,
    /// Step between samples in degrees. Must be positive.
    pub step_deg: f64,
}

impl GridSpec {
    /// Creates a new axis spec.
    ///
    /// # Panics
    /// Panics if `step_deg <= 0` or `end_deg < start_deg`.
    pub fn new(start_deg: f64, end_deg: f64, step_deg: f64) -> Self {
        assert!(step_deg > 0.0, "grid step must be positive");
        assert!(end_deg >= start_deg, "grid end must be >= start");
        GridSpec {
            start_deg,
            end_deg,
            step_deg,
        }
    }

    /// A single-sample axis (used for 2-D setups where elevation is fixed).
    pub fn fixed(value_deg: f64) -> Self {
        GridSpec {
            start_deg: value_deg,
            end_deg: value_deg,
            step_deg: 1.0,
        }
    }

    /// Number of samples along this axis.
    pub fn len(&self) -> usize {
        ((self.end_deg - self.start_deg) / self.step_deg + 1e-9).floor() as usize + 1
    }

    /// Whether the axis has exactly one sample.
    pub fn is_empty(&self) -> bool {
        false // a valid spec always has >= 1 sample
    }

    /// The `i`-th sample in degrees.
    pub fn value(&self, i: usize) -> f64 {
        self.start_deg + i as f64 * self.step_deg
    }

    /// Index of the sample closest to `deg` (clamped into range).
    pub fn nearest(&self, deg: f64) -> usize {
        let idx = ((deg - self.start_deg) / self.step_deg).round();
        (idx.max(0.0) as usize).min(self.len() - 1)
    }

    /// Iterates over all sample values in degrees.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }
}

/// A discrete grid over azimuth × elevation — the search space of Eq. 3.
///
/// Iteration order is elevation-major (all azimuths of the first elevation,
/// then the next elevation), matching the storage order of pattern tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SphericalGrid {
    /// Azimuth axis.
    pub az: GridSpec,
    /// Elevation axis.
    pub el: GridSpec,
}

impl SphericalGrid {
    /// Creates a grid from two axis specs.
    pub fn new(az: GridSpec, el: GridSpec) -> Self {
        SphericalGrid { az, el }
    }

    /// The anechoic-chamber azimuth scan of §4.3: az −180°..180° in 0.9°
    /// steps, elevation fixed at 0°.
    pub fn chamber_azimuth_scan() -> Self {
        SphericalGrid::new(GridSpec::new(-180.0, 180.0, 0.9), GridSpec::fixed(0.0))
    }

    /// The 3-D chamber scan of §4.5: az ±90° in 1.8° steps, el 0°..32.4° in
    /// 3.6° steps.
    pub fn chamber_3d_scan() -> Self {
        SphericalGrid::new(
            GridSpec::new(-90.0, 90.0, 1.8),
            GridSpec::new(0.0, 32.4, 3.6),
        )
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.az.len() * self.el.len()
    }

    /// Whether the grid is empty (never true for valid specs).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Direction at flat index `i` (elevation-major layout).
    pub fn direction(&self, i: usize) -> Direction {
        let n_az = self.az.len();
        let el_i = i / n_az;
        let az_i = i % n_az;
        Direction::new(self.az.value(az_i), self.el.value(el_i))
    }

    /// Flat index of the grid point nearest to `dir`.
    pub fn nearest_index(&self, dir: &Direction) -> usize {
        let az_i = self.az.nearest(dir.az_deg);
        let el_i = self.el.nearest(dir.el_deg);
        el_i * self.az.len() + az_i
    }

    /// Iterates over `(flat_index, Direction)` pairs in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Direction)> + '_ {
        (0..self.len()).map(move |i| (i, self.direction(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_vectors_are_unit() {
        for &(az, el) in &[(0.0, 0.0), (90.0, 0.0), (45.0, 30.0), (-120.0, -60.0)] {
            let v = Direction::new(az, el).unit_vector();
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn broadside_is_x_axis() {
        let v = Direction::BROADSIDE.unit_vector();
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12 && v[2].abs() < 1e-12);
    }

    #[test]
    fn angle_between_orthogonal_directions() {
        let a = Direction::new(0.0, 0.0);
        assert!((a.angle_to(&Direction::new(0.0, 90.0)) - 90.0).abs() < 1e-9);
        assert!((a.angle_to(&Direction::new(180.0, 0.0)) - 180.0).abs() < 1e-9);
        assert!(a.angle_to(&a) < 1e-9);
    }

    #[test]
    fn component_error_wraps_azimuth() {
        let est = Direction::new(-175.0, 10.0);
        let truth = Direction::new(175.0, 5.0);
        let (az_e, el_e) = est.component_error(&truth);
        assert!((az_e - 10.0).abs() < 1e-12);
        assert!((el_e - 5.0).abs() < 1e-12);
    }

    #[test]
    fn grid_spec_len_and_values() {
        let g = GridSpec::new(-180.0, 180.0, 0.9);
        assert_eq!(g.len(), 401);
        assert_eq!(g.value(0), -180.0);
        assert!((g.value(400) - 180.0).abs() < 1e-9);

        let f = GridSpec::fixed(12.0);
        assert_eq!(f.len(), 1);
        assert_eq!(f.value(0), 12.0);
    }

    #[test]
    fn grid_spec_nearest_clamps() {
        let g = GridSpec::new(0.0, 30.0, 2.0);
        assert_eq!(g.nearest(-5.0), 0);
        assert_eq!(g.nearest(31.0), 15);
        assert_eq!(g.nearest(7.1), 4); // 8.0 is closest
        assert_eq!(g.nearest(6.9), 3); // hmm: 6.9 -> idx 3.45 -> 3 (6.0)? no:
                                       // (6.9-0)/2 = 3.45 rounds to 3 => 6.0
    }

    #[test]
    fn spherical_grid_roundtrip() {
        let grid = SphericalGrid::chamber_3d_scan();
        assert_eq!(grid.az.len(), 101);
        assert_eq!(grid.el.len(), 10);
        assert_eq!(grid.len(), 1010);
        for &i in &[0usize, 1, 100, 101, 555, 1009] {
            let d = grid.direction(i);
            assert_eq!(grid.nearest_index(&d), i);
        }
    }

    #[test]
    fn nearest_index_snaps_off_grid_directions() {
        let grid = SphericalGrid::new(
            GridSpec::new(-10.0, 10.0, 5.0),
            GridSpec::new(0.0, 10.0, 5.0),
        );
        let idx = grid.nearest_index(&Direction::new(3.0, 7.0));
        let d = grid.direction(idx);
        assert_eq!(d.az_deg, 5.0);
        assert_eq!(d.el_deg, 5.0);
    }

    #[test]
    #[should_panic(expected = "grid step must be positive")]
    fn zero_step_panics() {
        GridSpec::new(0.0, 10.0, 0.0);
    }
}
