//! Interpolation helpers for post-processing chamber measurements.
//!
//! The paper's pattern plots (Fig. 5/6) are produced by omitting obvious
//! outliers, averaging over repeated measurements and "interpolating over
//! gaps where we could not capture any frames due to misses in directions
//! with low gains" (§4.3). This module provides those primitives:
//!
//! * [`fill_gaps_circular`] / [`fill_gaps_linear`] — 1-D gap filling over a
//!   circular (azimuth) or bounded (elevation) axis;
//! * [`lerp`] — plain linear interpolation;
//! * [`bilinear`] — gain lookup between grid points of a 2-D pattern table.

/// Linear interpolation between `a` and `b` with parameter `t ∈ [0, 1]`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Fills `None` gaps in a series sampled on a *circular* axis by linear
/// interpolation between the nearest present neighbours (wrapping around the
/// ends). Used for azimuth scans where −180° and 180° meet.
///
/// If fewer than one sample is present, returns a vector of `fallback`.
pub fn fill_gaps_circular(samples: &[Option<f64>], fallback: f64) -> Vec<f64> {
    fill_gaps_impl(samples, fallback, true)
}

/// Fills `None` gaps in a series sampled on a *bounded* axis. Leading and
/// trailing gaps are extended from the nearest present sample (constant
/// extrapolation).
pub fn fill_gaps_linear(samples: &[Option<f64>], fallback: f64) -> Vec<f64> {
    fill_gaps_impl(samples, fallback, false)
}

fn fill_gaps_impl(samples: &[Option<f64>], fallback: f64, circular: bool) -> Vec<f64> {
    let n = samples.len();
    let present: Vec<usize> = (0..n).filter(|&i| samples[i].is_some()).collect();
    if present.is_empty() {
        return vec![fallback; n];
    }
    if present.len() == 1 {
        return vec![samples[present[0]].unwrap(); n];
    }
    let mut out = vec![0.0; n];
    for i in 0..n {
        if let Some(v) = samples[i] {
            out[i] = v;
            continue;
        }
        // Find the nearest present neighbours left and right.
        let right = present.iter().copied().find(|&p| p > i);
        let left = present.iter().rev().copied().find(|&p| p < i);
        out[i] = match (left, right, circular) {
            (Some(l), Some(r), _) => {
                let t = (i - l) as f64 / (r - l) as f64;
                lerp(samples[l].unwrap(), samples[r].unwrap(), t)
            }
            (None, Some(r), true) => {
                // Wrap: previous neighbour is the last present sample.
                let l = *present.last().unwrap();
                let span = (n - l) + r;
                let t = (n - l + i) as f64 / span as f64;
                lerp(samples[l].unwrap(), samples[r].unwrap(), t)
            }
            (Some(l), None, true) => {
                let r = present[0];
                let span = (n - l) + r;
                let t = (i - l) as f64 / span as f64;
                lerp(samples[l].unwrap(), samples[r].unwrap(), t)
            }
            (None, Some(r), false) => samples[r].unwrap(),
            (Some(l), None, false) => samples[l].unwrap(),
            (None, None, _) => unreachable!("present is non-empty"),
        };
    }
    out
}

/// Bilinear interpolation on a row-major 2-D table.
///
/// `table` has `rows * cols` entries; `(r, c)` may be fractional and is
/// clamped to the valid range. Used to read a measured sector pattern at a
/// direction that falls between measured grid points.
pub fn bilinear(table: &[f64], rows: usize, cols: usize, r: f64, c: f64) -> f64 {
    assert_eq!(table.len(), rows * cols, "bilinear: table size mismatch");
    assert!(rows > 0 && cols > 0, "bilinear: empty table");
    let r = r.clamp(0.0, (rows - 1) as f64);
    let c = c.clamp(0.0, (cols - 1) as f64);
    let r0 = r.floor() as usize;
    let c0 = c.floor() as usize;
    let r1 = (r0 + 1).min(rows - 1);
    let c1 = (c0 + 1).min(cols - 1);
    let tr = r - r0 as f64;
    let tc = c - c0 as f64;
    let top = lerp(table[r0 * cols + c0], table[r0 * cols + c1], tc);
    let bottom = lerp(table[r1 * cols + c0], table[r1 * cols + c1], tc);
    lerp(top, bottom, tr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_middle() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }

    #[test]
    fn fill_interior_gap() {
        let s = [Some(0.0), None, None, Some(3.0)];
        let out = fill_gaps_linear(&s, -99.0);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fill_edges_bounded_extends_constant() {
        let s = [None, Some(5.0), None, Some(7.0), None];
        let out = fill_gaps_linear(&s, 0.0);
        assert_eq!(out, vec![5.0, 5.0, 6.0, 7.0, 7.0]);
    }

    #[test]
    fn fill_edges_circular_wraps() {
        // Samples at indices 1 and 3 of a 4-long circular axis; index 0's
        // neighbours are 3 (left, wrapped) and 1 (right), equidistant.
        let s = [None, Some(0.0), None, Some(2.0)];
        let out = fill_gaps_circular(&s, 0.0);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[3], 2.0);
        assert!((out[0] - 1.0).abs() < 1e-12); // halfway 2.0 -> 0.0
        assert!((out[2] - 1.0).abs() < 1e-12); // halfway 0.0 -> 2.0
    }

    #[test]
    fn all_missing_uses_fallback() {
        let s = [None, None, None];
        assert_eq!(fill_gaps_circular(&s, -7.0), vec![-7.0; 3]);
        assert_eq!(fill_gaps_linear(&s, -7.0), vec![-7.0; 3]);
    }

    #[test]
    fn single_sample_broadcasts() {
        let s = [None, Some(4.5), None];
        assert_eq!(fill_gaps_circular(&s, 0.0), vec![4.5; 3]);
    }

    #[test]
    fn bilinear_corners_and_center() {
        // 2x2 table:
        //  0 1
        //  2 3
        let t = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(bilinear(&t, 2, 2, 0.0, 0.0), 0.0);
        assert_eq!(bilinear(&t, 2, 2, 0.0, 1.0), 1.0);
        assert_eq!(bilinear(&t, 2, 2, 1.0, 0.0), 2.0);
        assert_eq!(bilinear(&t, 2, 2, 0.5, 0.5), 1.5);
    }

    #[test]
    fn bilinear_clamps_out_of_range() {
        let t = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(bilinear(&t, 2, 2, -5.0, -5.0), 0.0);
        assert_eq!(bilinear(&t, 2, 2, 9.0, 9.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn bilinear_size_mismatch_panics() {
        bilinear(&[0.0; 3], 2, 2, 0.0, 0.0);
    }
}
