//! Decibel math and the firmware's quantized SNR representation.
//!
//! The QCA9500 firmware reports SNR values "quantized in quarters of dB in a
//! range from -7 to 12 dB" (paper §4.3). [`QuantizedDb`] models exactly that
//! representation so the rest of the pipeline sees the same granularity and
//! clipping the paper's algorithm had to cope with.

use serde::{Deserialize, Serialize};

/// Converts a power ratio in dB to linear scale.
///
/// ```
/// use geom::db::db_to_linear;
/// assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-4);
/// assert_eq!(db_to_linear(0.0), 1.0);
/// ```
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB. Returns `-inf` for zero input.
///
/// ```
/// use geom::db::linear_to_db;
/// assert!((linear_to_db(100.0) - 20.0).abs() < 1e-12);
/// ```
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Sums two powers given in dB (i.e. converts to linear, adds, converts
/// back). Useful when combining multipath components.
pub fn db_power_sum(a_db: f64, b_db: f64) -> f64 {
    linear_to_db(db_to_linear(a_db) + db_to_linear(b_db))
}

/// A dB value quantized to a fixed step within a clamped range, as produced
/// by low-cost 802.11ad firmware.
///
/// The default parameters ([`QuantizedDb::TALON_SNR`]) match the paper:
/// quarter-dB steps, clamped to `[-7, 12]` dB. Values are stored as an
/// integer number of steps so equality and hashing are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QuantizedDb {
    /// Number of quantization steps from zero (may be negative).
    steps: i32,
}

/// Quantization rule: step size and clamp range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbQuantizer {
    /// Quantization step in dB.
    pub step_db: f64,
    /// Lowest representable value in dB.
    pub min_db: f64,
    /// Highest representable value in dB.
    pub max_db: f64,
}

impl DbQuantizer {
    /// The Talon AD7200 SNR report format: quarter-dB steps in `[-7, 12]` dB
    /// (paper §4.3).
    pub const TALON_SNR: DbQuantizer = DbQuantizer {
        step_db: 0.25,
        min_db: -7.0,
        max_db: 12.0,
    };

    /// The (coarser) RSSI report format used by our firmware emulation:
    /// 1 dB steps over a wide dynamic range. The paper does not document the
    /// RSSI granularity; 1 dB matches what the wil6210 driver exposes.
    pub const TALON_RSSI: DbQuantizer = DbQuantizer {
        step_db: 1.0,
        min_db: -100.0,
        max_db: -20.0,
    };

    /// Quantizes a raw dB value: clamp to range, round to nearest step.
    pub fn quantize(&self, db: f64) -> QuantizedDb {
        let clamped = db.clamp(self.min_db, self.max_db);
        QuantizedDb {
            steps: (clamped / self.step_db).round() as i32,
        }
    }

    /// Recovers the dB value of a quantized sample under this rule.
    pub fn value(&self, q: QuantizedDb) -> f64 {
        q.steps as f64 * self.step_db
    }

    /// Whether `db` lies outside the representable range (and would clip).
    pub fn clips(&self, db: f64) -> bool {
        db < self.min_db || db > self.max_db
    }

    /// Number of representable levels.
    pub fn levels(&self) -> usize {
        (((self.max_db - self.min_db) / self.step_db).round() as usize) + 1
    }
}

impl QuantizedDb {
    /// Raw step count (exact integer representation).
    pub fn steps(self) -> i32 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_roundtrip() {
        for &db in &[-30.0, -7.0, 0.0, 3.0, 12.0, 20.0] {
            let back = linear_to_db(db_to_linear(db));
            assert!((back - db).abs() < 1e-10, "{db} -> {back}");
        }
    }

    #[test]
    fn power_sum_doubles() {
        // Adding two equal powers gives +3.0103 dB.
        let s = db_power_sum(10.0, 10.0);
        assert!((s - 13.0103).abs() < 1e-3);
        // Adding a much weaker component barely changes the total.
        let s = db_power_sum(10.0, -40.0);
        assert!((s - 10.0).abs() < 1e-3);
    }

    #[test]
    fn talon_snr_quantizer_steps() {
        let q = DbQuantizer::TALON_SNR;
        assert_eq!(q.value(q.quantize(5.1)), 5.0);
        assert_eq!(q.value(q.quantize(5.13)), 5.25);
        assert_eq!(q.value(q.quantize(-3.9)), -4.0);
    }

    #[test]
    fn talon_snr_quantizer_clamps() {
        let q = DbQuantizer::TALON_SNR;
        assert_eq!(q.value(q.quantize(25.0)), 12.0);
        assert_eq!(q.value(q.quantize(-33.0)), -7.0);
        assert!(q.clips(12.5));
        assert!(q.clips(-7.5));
        assert!(!q.clips(0.0));
    }

    #[test]
    fn level_count() {
        // [-7, 12] in 0.25 steps: 19/0.25 + 1 = 77 levels.
        assert_eq!(DbQuantizer::TALON_SNR.levels(), 77);
        assert_eq!(DbQuantizer::TALON_RSSI.levels(), 81);
    }

    #[test]
    fn quantized_values_are_ordered() {
        let q = DbQuantizer::TALON_SNR;
        assert!(q.quantize(3.0) < q.quantize(4.0));
        assert_eq!(q.quantize(3.1), q.quantize(3.05));
    }
}
