//! Wrap-aware angle arithmetic in degrees.
//!
//! Azimuth angles live on a circle: `-180°` and `180°` are the same physical
//! direction, and the distance between `170°` and `-170°` is `20°`, not
//! `340°`. Getting this wrong silently corrupts angle-of-arrival error
//! statistics (Fig. 7), so all angle handling funnels through this module.

use serde::{Deserialize, Serialize};

/// Wraps an angle in degrees into the half-open interval `(-180, 180]`.
///
/// This is the canonical representation for azimuth angles throughout the
/// workspace and matches the plot range of Fig. 5 in the paper.
///
/// ```
/// use geom::angle::wrap_180;
/// assert_eq!(wrap_180(190.0), -170.0);
/// assert_eq!(wrap_180(-180.0), 180.0);
/// assert_eq!(wrap_180(540.0), 180.0);
/// ```
pub fn wrap_180(deg: f64) -> f64 {
    let mut a = deg % 360.0;
    if a <= -180.0 {
        a += 360.0;
    } else if a > 180.0 {
        a -= 360.0;
    }
    a
}

/// Wraps an angle in degrees into `[0, 360)`.
pub fn wrap_360(deg: f64) -> f64 {
    let mut a = deg % 360.0;
    if a < 0.0 {
        a += 360.0;
    }
    a
}

/// Shortest signed angular difference `a - b` on the circle, in `(-180, 180]`.
///
/// ```
/// use geom::angle::angular_diff;
/// assert_eq!(angular_diff(170.0, -170.0), -20.0);
/// assert_eq!(angular_diff(-170.0, 170.0), 20.0);
/// ```
pub fn angular_diff(a: f64, b: f64) -> f64 {
    wrap_180(a - b)
}

/// Absolute shortest angular distance between two angles in degrees, in
/// `[0, 180]`.
pub fn angular_dist(a: f64, b: f64) -> f64 {
    angular_diff(a, b).abs()
}

/// An azimuth/elevation-style angle in degrees, stored wrapped to
/// `(-180, 180]`.
///
/// `AngleDeg` is a thin newtype used where mixing up degrees and radians or
/// forgetting to wrap would be costly. Plain `f64` degrees remain acceptable
/// in local computations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AngleDeg(f64);

impl AngleDeg {
    /// Creates an angle from degrees, wrapping into `(-180, 180]`.
    pub fn new(deg: f64) -> Self {
        AngleDeg(wrap_180(deg))
    }

    /// The wrapped value in degrees.
    pub fn deg(self) -> f64 {
        self.0
    }

    /// The value in radians.
    pub fn rad(self) -> f64 {
        self.0.to_radians()
    }

    /// Creates an angle from radians.
    pub fn from_rad(rad: f64) -> Self {
        AngleDeg::new(rad.to_degrees())
    }

    /// Shortest signed difference `self - other` in degrees.
    pub fn diff(self, other: AngleDeg) -> f64 {
        angular_diff(self.0, other.0)
    }

    /// Absolute shortest distance to `other` in degrees.
    pub fn dist(self, other: AngleDeg) -> f64 {
        angular_dist(self.0, other.0)
    }

    /// Returns the angle rotated by `deg` degrees (wrapped).
    pub fn rotated(self, deg: f64) -> AngleDeg {
        AngleDeg::new(self.0 + deg)
    }
}

impl std::ops::Add<f64> for AngleDeg {
    type Output = AngleDeg;
    fn add(self, rhs: f64) -> AngleDeg {
        self.rotated(rhs)
    }
}

impl std::ops::Sub<f64> for AngleDeg {
    type Output = AngleDeg;
    fn sub(self, rhs: f64) -> AngleDeg {
        self.rotated(-rhs)
    }
}

impl std::fmt::Display for AngleDeg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}°", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_180_basic() {
        assert_eq!(wrap_180(0.0), 0.0);
        assert_eq!(wrap_180(180.0), 180.0);
        assert_eq!(wrap_180(-180.0), 180.0);
        assert_eq!(wrap_180(181.0), -179.0);
        assert_eq!(wrap_180(-181.0), 179.0);
        assert_eq!(wrap_180(360.0), 0.0);
        assert_eq!(wrap_180(-360.0), 0.0);
        assert_eq!(wrap_180(720.0 + 45.0), 45.0);
    }

    #[test]
    fn wrap_360_basic() {
        assert_eq!(wrap_360(0.0), 0.0);
        assert_eq!(wrap_360(-1.0), 359.0);
        assert_eq!(wrap_360(360.0), 0.0);
        assert_eq!(wrap_360(725.0), 5.0);
    }

    #[test]
    fn diff_is_shortest_path() {
        assert_eq!(angular_diff(10.0, 350.0), 20.0);
        assert_eq!(angular_diff(350.0, 10.0), -20.0);
        assert_eq!(angular_diff(90.0, -90.0), 180.0);
        assert_eq!(angular_dist(90.0, -90.0), 180.0);
        assert_eq!(angular_dist(-170.0, 170.0), 20.0);
    }

    #[test]
    fn angle_type_roundtrip() {
        let a = AngleDeg::new(190.0);
        assert_eq!(a.deg(), -170.0);
        let b = AngleDeg::from_rad(std::f64::consts::PI / 2.0);
        assert!((b.deg() - 90.0).abs() < 1e-12);
        assert!((b.rad() - std::f64::consts::PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn angle_ops() {
        let a = AngleDeg::new(170.0) + 20.0;
        assert_eq!(a.deg(), -170.0);
        let b = AngleDeg::new(-170.0) - 20.0;
        assert_eq!(b.deg(), 170.0);
        assert_eq!(AngleDeg::new(170.0).dist(AngleDeg::new(-170.0)), 20.0);
    }

    #[test]
    fn display_formats_degrees() {
        assert_eq!(format!("{}", AngleDeg::new(45.125)), "45.12°");
    }
}
