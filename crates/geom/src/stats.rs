//! Descriptive statistics for experiment reporting.
//!
//! Fig. 7 of the paper reports box plots "where boxes indicate the 50%,
//! whiskers the 99% confidence bounds and the dash the median". [`BoxStats`]
//! computes exactly that summary; the rest of the module provides the usual
//! mean/median/quantile helpers used across the evaluation harness.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator). Returns `None` for fewer
/// than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Quantile with linear interpolation between order statistics
/// (type-7 / the NumPy default). `q` is clamped to `[0, 1]`.
/// Returns `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile on an already-sorted slice (ascending). See [`quantile`].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * t
    }
}

/// Median shorthand. Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// The five-number summary used by the paper's Fig. 7 box plots:
/// median, central 50 % box (25th/75th percentile) and central 99 %
/// whiskers (0.5th/99.5th percentile).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// 0.5th percentile (lower 99 % whisker).
    pub p005: f64,
    /// 25th percentile (lower box edge).
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile (upper box edge).
    pub q75: f64,
    /// 99.5th percentile (upper 99 % whisker).
    pub p995: f64,
    /// Number of samples summarized.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary. Returns `None` for an empty slice.
    pub fn from_samples(xs: &[f64]) -> Option<BoxStats> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in BoxStats input"));
        Some(BoxStats {
            p005: quantile_sorted(&sorted, 0.005),
            q25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q75: quantile_sorted(&sorted, 0.75),
            p995: quantile_sorted(&sorted, 0.995),
            n: xs.len(),
        })
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "med {:.2} [box {:.2}..{:.2}, whisk {:.2}..{:.2}, n={}]",
            self.median, self.q25, self.q75, self.p005, self.p995, self.n
        )
    }
}

/// Fraction of entries equal to the most frequent value — the "selection
/// stability" metric of Fig. 8 (time spent in the most prominent sector).
///
/// Returns `None` for an empty slice.
pub fn modal_fraction<T: Eq + std::hash::Hash>(xs: &[T]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut counts = std::collections::HashMap::new();
    for x in xs {
        *counts.entry(x).or_insert(0usize) += 1;
    }
    let max = counts.values().copied().max().unwrap();
    Some(max as f64 / xs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&xs, 1.0 / 3.0), Some(2.0));
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), Some(5.0));
    }

    #[test]
    fn quantile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -0.5), Some(1.0));
        assert_eq!(quantile(&xs, 1.5), Some(2.0));
    }

    #[test]
    fn box_stats_of_uniform_ramp() {
        let xs: Vec<f64> = (0..=1000).map(|i| i as f64 / 10.0).collect();
        let b = BoxStats::from_samples(&xs).unwrap();
        assert!((b.median - 50.0).abs() < 1e-9);
        assert!((b.q25 - 25.0).abs() < 1e-9);
        assert!((b.q75 - 75.0).abs() < 1e-9);
        assert!((b.p005 - 0.5).abs() < 1e-9);
        assert!((b.p995 - 99.5).abs() < 1e-9);
        assert_eq!(b.n, 1001);
    }

    #[test]
    fn box_stats_empty_is_none() {
        assert!(BoxStats::from_samples(&[]).is_none());
    }

    #[test]
    fn box_stats_single_sample() {
        let b = BoxStats::from_samples(&[3.0]).unwrap();
        assert_eq!(b.median, 3.0);
        assert_eq!(b.p005, 3.0);
        assert_eq!(b.p995, 3.0);
    }

    #[test]
    fn modal_fraction_counts_dominant_value() {
        assert_eq!(modal_fraction::<u8>(&[]), None);
        assert_eq!(modal_fraction(&[1, 1, 1, 2]), Some(0.75));
        assert_eq!(modal_fraction(&[1, 2, 3, 4]), Some(0.25));
        assert_eq!(modal_fraction(&[7; 10]), Some(1.0));
    }
}
