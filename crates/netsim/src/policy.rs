//! Training-policy abstraction for the network-scale experiments.
//!
//! A [`TrainingPolicy`] bundles what the experiments need to know about a
//! beam-training scheme: how many probes one training costs (which sets
//! its airtime via the §4.1 timing model) and how a transmit sector is
//! selected from one sweep's readings.

use chamber::SectorPatterns;
use css::estimator::CorrelationMode;
use css::multipath::MultipathEstimator;
use css::selection::{CompressiveSelection, CssConfig, DecisionOracle};
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy};
use mac80211ad::timing::{mutual_training_time, SimDuration};
use rand::Rng;
use talon_array::SectorId;
use talon_channel::{Device, Link, SweepReading};

/// A beam-training scheme under test.
pub enum TrainingPolicy {
    /// The stock exhaustive sweep (Eq. 1).
    Ssw,
    /// Compressive selection with a probe budget.
    Css(Box<CompressiveSelection>),
    /// Compressive selection that additionally tracks a secondary path and
    /// keeps a backup sector armed for instant blockage fail-over
    /// (BeamSpy-style, §8).
    CssBackup(Box<CssBackupState>),
}

/// State of the backup-tracking variant.
pub struct CssBackupState {
    selection: CompressiveSelection,
    multipath: MultipathEstimator,
    /// The currently armed backup sector, if any.
    pub backup: Option<SectorId>,
}

impl TrainingPolicy {
    /// Stock sweep.
    pub fn ssw() -> Self {
        TrainingPolicy::Ssw
    }

    /// Compressive selection with `m` probes over measured `patterns`.
    pub fn css(patterns: SectorPatterns, m: usize, seed: u64) -> Self {
        TrainingPolicy::Css(Box::new(CompressiveSelection::new(
            patterns,
            CssConfig {
                num_probes: m,
                ..CssConfig::paper_default()
            },
            seed,
        )))
    }

    /// Compressive selection with backup-path tracking.
    pub fn css_with_backup(patterns: SectorPatterns, m: usize, seed: u64) -> Self {
        let selection = CompressiveSelection::new(
            patterns.clone(),
            CssConfig {
                num_probes: m,
                ..CssConfig::paper_default()
            },
            seed,
        );
        // A false backup costs nothing (it is only consulted when the
        // primary's rate is zero, and only used if it actually carries
        // data), so arm permissively.
        let multipath = MultipathEstimator::new(patterns, CorrelationMode::JointSnrRssi)
            .with_min_score_ratio(0.03);
        TrainingPolicy::CssBackup(Box::new(CssBackupState {
            selection,
            multipath,
            backup: None,
        }))
    }

    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            TrainingPolicy::Ssw => "SSW".into(),
            TrainingPolicy::Css(c) => format!("CSS({})", c.num_probes()),
            TrainingPolicy::CssBackup(b) => format!("CSS+bk({})", b.selection.num_probes()),
        }
    }

    /// Probes per one-directional training sweep.
    pub fn probes(&self, full_sweep_len: usize) -> usize {
        match self {
            TrainingPolicy::Ssw => full_sweep_len,
            TrainingPolicy::Css(c) => c.num_probes().min(full_sweep_len),
            TrainingPolicy::CssBackup(b) => b.selection.num_probes().min(full_sweep_len),
        }
    }

    /// The armed backup sector, if this policy tracks one.
    pub fn backup(&self) -> Option<SectorId> {
        match self {
            TrainingPolicy::CssBackup(b) => b.backup,
            _ => None,
        }
    }

    /// Airtime of one *mutual* training under the §4.1 timing model.
    pub fn training_time(&self, full_sweep_len: usize) -> SimDuration {
        mutual_training_time(self.probes(full_sweep_len))
    }

    /// Performs one training of `tx`'s sector over the link and returns
    /// the selected sector.
    pub fn train<R: Rng>(
        &mut self,
        rng: &mut R,
        link: &Link,
        tx: &Device,
        rx: &Device,
    ) -> Option<SectorId> {
        let full = tx.codebook.sweep_order();
        let probes = match self {
            TrainingPolicy::Ssw => full,
            TrainingPolicy::Css(c) => c.probe_sectors(&full),
            TrainingPolicy::CssBackup(b) => b.selection.probe_sectors(&full),
        };
        let readings: Vec<SweepReading> = link.sweep(rng, tx, &probes, rx);
        // While a trace records, hand the CSS policy an exhaustive-sweep
        // oracle so its decision record carries the true-best sector and
        // SNR loss. The oracle sweep is noise-free simulator ground truth
        // (`true_snr_db`), so it perturbs nothing.
        if obs::sink_active() {
            let selection = match self {
                TrainingPolicy::Css(c) => Some(&mut **c),
                TrainingPolicy::CssBackup(b) => Some(&mut b.selection),
                TrainingPolicy::Ssw => None,
            };
            if let Some(selection) = selection {
                let rxw = &rx.codebook.rx_sector().weights;
                let snr_by_sector = tx
                    .codebook
                    .sweep_order()
                    .into_iter()
                    .map(|s| (s, link.true_snr_db(tx, s, rx, rxw)))
                    .collect();
                selection.provide_oracle(DecisionOracle { snr_by_sector });
            }
        }
        match self {
            TrainingPolicy::Ssw => MaxSnrPolicy.select(&readings),
            TrainingPolicy::Css(c) => c.select_from_readings(&readings),
            TrainingPolicy::CssBackup(b) => {
                let (primary, backup) = b.multipath.primary_and_backup(&readings);
                b.backup = backup;
                // Fall back to the plain pipeline when the multipath
                // estimator found nothing.
                primary.or_else(|| b.selection.select_from_readings(&readings))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chamber::{Campaign, CampaignConfig};
    use geom::rng::sub_rng;
    use talon_channel::Environment;

    fn patterns() -> (SectorPatterns, Device, Device) {
        let link = Link::new(Environment::anechoic(3.0));
        let mut dut = Device::talon(70);
        let peer = Device::talon(71);
        let mut campaign = Campaign::new(CampaignConfig::coarse(), 70);
        let mut rng = sub_rng(70, "policy-campaign");
        let p = campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &peer);
        dut.orientation = talon_channel::Orientation::NEUTRAL;
        (p, dut, peer)
    }

    #[test]
    fn names_and_probe_counts() {
        let (p, _, _) = patterns();
        let ssw = TrainingPolicy::ssw();
        let css = TrainingPolicy::css(p, 14, 1);
        assert_eq!(ssw.name(), "SSW");
        assert_eq!(css.name(), "CSS(14)");
        assert_eq!(ssw.probes(34), 34);
        assert_eq!(css.probes(34), 14);
        assert!((ssw.training_time(34).as_ms() - 1.2731).abs() < 1e-9);
        assert!((css.training_time(34).as_ms() - 0.5531).abs() < 1e-9);
    }

    #[test]
    fn both_policies_select_reasonable_sectors() {
        let (p, dut, peer) = patterns();
        let link = Link::new(Environment::lab());
        let rxw = peer.codebook.rx_sector().weights.clone();
        let optimum = dut
            .codebook
            .sweep_order()
            .into_iter()
            .map(|s| link.true_snr_db(&dut, s, &peer, &rxw))
            .fold(f64::NEG_INFINITY, f64::max);
        let mut rng = sub_rng(71, "policy-train");
        for mut pol in [TrainingPolicy::ssw(), TrainingPolicy::css(p.clone(), 14, 2)] {
            let sel = pol.train(&mut rng, &link, &dut, &peer).expect("selects");
            let snr = link.true_snr_db(&dut, sel, &peer, &rxw);
            assert!(
                optimum - snr < 4.0,
                "{} selected {sel} at {snr:.1} dB vs optimum {optimum:.1}",
                pol.name()
            );
        }
    }
}
