//! Multi-node 60 GHz room simulation.
//!
//! The paper's discussion (§7) argues that the value of faster beam
//! training compounds at the network scale: "each sector sweep performed
//! by a pair of nodes pollutes the whole mm-wave channel in all
//! directions", and "the shorter the sweeping time, the more often a sweep
//! can be performed without degrading the throughput too much". This crate
//! builds the simulations behind those two claims:
//!
//! * [`policy`] — the training-policy abstraction shared by the
//!   experiments (stock sweep vs compressive selection at a probe budget).
//! * [`dense`] — N node pairs sharing one mm-wave channel, each re-training
//!   at a tracking rate; reports the training airtime and the aggregate
//!   goodput left for data (the `ext-dense` experiment).
//! * [`tracking`] — a single rotating pair under random blockage; compares
//!   policies at *equal training airtime* (CSS re-trains 2.3× more often)
//!   on achieved-rate-over-time (the `ext-tracking` experiment).
//! * [`room`] — room geometry with per-pair positions and directional
//!   interference: quantifies spatial reuse of concurrent data links and
//!   the omnidirectional pollution of a sector sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod inject;
pub mod policy;
pub mod room;
pub mod tracking;

pub use dense::{dense_deployment, DenseConfig, DenseResult};
pub use inject::DriftProfile;
pub use policy::TrainingPolicy;
pub use room::{PairLink, PlacedPair, Room};
pub use tracking::{tracking_run, TrackingConfig, TrackingResult};
