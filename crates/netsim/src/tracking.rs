//! Mobility + blockage tracking at equal airtime (`ext-tracking`).
//!
//! §7: "the shorter the sweeping time, the more often a sweep can be
//! performed without degrading the throughput too much. Hence, our
//! approach is best suited to increase the performance and frequency of
//! sweeping." This experiment makes that quantitative: one pair, the
//! transmitter slowly rotating while blockage episodes hit the channel;
//! each policy re-trains as often as a fixed *training airtime budget*
//! allows — so CSS(14) trains 2.3× more often than the stock sweep for
//! the same budget — and the metric is the achieved data rate over time.

use crate::policy::TrainingPolicy;
use geom::rng::sub_rng;
use serde::Serialize;
use talon_array::SectorId;
use talon_channel::{
    BlockageModel, DataLinkModel, Device, DynamicEnvironment, Environment, Link, Orientation,
};

/// Configuration of the tracking experiment.
#[derive(Debug, Clone)]
pub struct TrackingConfig {
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Fraction of airtime each policy may spend training.
    pub training_budget: f64,
    /// Rotation rate of the transmitter, degrees per second.
    pub rotation_deg_per_s: f64,
    /// Rotation extent: yaw oscillates in ±this, degrees.
    pub rotation_extent_deg: f64,
    /// Blockage process.
    pub blockage: BlockageModel,
    /// Data-plane rate model.
    pub rate_model: DataLinkModel,
    /// Rate-sampling step, seconds.
    pub sample_step_s: f64,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            horizon_s: 30.0,
            training_budget: 0.004, // 0.4 % of airtime for beam management
            rotation_deg_per_s: 45.0,
            rotation_extent_deg: 45.0,
            blockage: BlockageModel::default(),
            rate_model: DataLinkModel::default(),
            sample_step_s: 0.02,
        }
    }
}

/// Result of one policy's tracking run.
#[derive(Debug, Clone, Serialize)]
pub struct TrackingResult {
    /// Policy display name.
    pub policy: String,
    /// Re-trainings performed over the horizon.
    pub trainings: usize,
    /// Re-training interval implied by the airtime budget, seconds.
    pub train_interval_s: f64,
    /// Mean achieved TCP goodput over the horizon, Gbps.
    pub mean_gbps: f64,
    /// Fraction of samples with an unusable link (rate 0).
    pub outage_fraction: f64,
    /// Mean staleness loss: achieved rate vs the rate of the
    /// currently-optimal sector, Gbps.
    pub mean_rate_gap_gbps: f64,
    /// Times the armed backup sector rescued a collapsed primary
    /// (always 0 for policies without backup tracking).
    pub failovers: usize,
    /// Online quality summary: SNR-loss quantiles, misselection rate, and
    /// the drift epochs the EWMA+CUSUM monitor detected during the run.
    pub quality: obs::QualitySummary,
}

/// Triangle-wave yaw trajectory in ±extent at the given rate.
fn yaw_at(t_s: f64, rate_deg_s: f64, extent_deg: f64) -> f64 {
    if extent_deg <= 0.0 {
        return 0.0;
    }
    let period = 4.0 * extent_deg / rate_deg_s;
    let phase = (t_s / period).fract() * 4.0; // 0..4
    match phase {
        p if p < 1.0 => p * extent_deg,
        p if p < 3.0 => (2.0 - p) * extent_deg,
        p => (p - 4.0) * extent_deg,
    }
}

/// Runs the tracking experiment for one policy.
pub fn tracking_run(
    config: &TrackingConfig,
    mut policy: TrainingPolicy,
    seed: u64,
) -> TrackingResult {
    let mut rng = sub_rng(seed, "tracking");
    let mut tx = Device::talon(seed);
    let rx = Device::talon(seed.wrapping_add(1));
    let dynenv = DynamicEnvironment::with_blockage(
        Environment::conference_room(),
        &config.blockage,
        &mut rng,
        config.horizon_s,
    );

    // Equal-airtime budget → per-policy re-training interval.
    let t_train_s = policy.training_time(34).as_ms() / 1000.0;
    let train_interval_s = t_train_s / config.training_budget;

    let rxw = rx.codebook.rx_sector().weights.clone();
    let mut current: Option<SectorId> = None;
    let mut next_training = 0.0;
    let mut trainings = 0;
    let mut rates = Vec::new();
    let mut gaps = Vec::new();
    let mut outages = 0usize;
    let mut failovers = 0usize;
    // Online drift monitoring over the SNR-loss and misselection streams.
    // The CUSUM alarms are `health.link_drift` counters (sink-gated events),
    // so they surface in `talon serve` and `talon report --quality` alike.
    let mut quality = obs::QualityMonitor::new();

    let mut t = 0.0;
    while t < config.horizon_s {
        tx.orientation = Orientation::new(
            yaw_at(t, config.rotation_deg_per_s, config.rotation_extent_deg),
            0.0,
        );
        let link = Link::new(dynenv.at(t));
        // Reference: the best SNR any sector could achieve right now (the
        // rate model is monotone in SNR, so this also gives the best rate).
        let best_snr = tx
            .codebook
            .sweep_order()
            .into_iter()
            .map(|s| link.true_snr_db(&tx, s, &rx, &rxw))
            .fold(f64::NEG_INFINITY, f64::max);
        if t >= next_training {
            if let Some(sel) = policy.train(&mut rng, &link, &tx, &rx) {
                current = Some(sel);
            }
            trainings += 1;
            next_training = t + train_interval_s;
            if let Some(sel) = current {
                let chosen_snr = link.true_snr_db(&tx, sel, &rx, &rxw);
                quality.record_selection(
                    t,
                    best_snr - chosen_snr > obs::monitor::MISSELECTION_THRESHOLD_DB,
                );
            }
        }
        // Achieved rate with the currently selected sector.
        let mut active = current;
        let mut rate = match current {
            Some(sel) => {
                let snr = link.true_snr_db(&tx, sel, &rx, &rxw);
                config.rate_model.tcp_gbps(snr)
            }
            None => 0.0,
        };
        // BeamSpy-style fail-over: when the primary collapses and a backup
        // sector is armed, switch to it instantly (no re-training needed —
        // the backup was learned from the previous sweep's multipath
        // estimate).
        if rate == 0.0 {
            if let Some(bk) = policy.backup() {
                let bk_rate = config
                    .rate_model
                    .tcp_gbps(link.true_snr_db(&tx, bk, &rx, &rxw));
                if bk_rate > 0.0 {
                    rate = bk_rate;
                    active = Some(bk);
                    failovers += 1;
                }
            }
        }
        // Feed the drift monitor the loss of the sector actually carrying
        // data (the backup during a fail-over). A blocked LoS moves the
        // optimum to a reflection, so a stale selection shows up here as a
        // step the CUSUM alarms on.
        if let Some(sel) = active {
            let active_snr = link.true_snr_db(&tx, sel, &rx, &rxw);
            quality.record_loss(t, best_snr - active_snr);
        }
        let best = config.rate_model.tcp_gbps(best_snr);
        if rate == 0.0 {
            if outages == 0 || *rates.last().expect("outage implies a prior sample") > 0.0 {
                // Report the transition into outage, not every sample spent
                // in it — one anomaly per blockage/rotation event.
                obs::health::anomaly(
                    "link_outage",
                    &[
                        ("t_s", t),
                        ("sector", current.map_or(-1.0, |s| f64::from(s.raw()))),
                    ],
                );
            }
            outages += 1;
        }
        rates.push(rate);
        gaps.push(best - rate);
        t += config.sample_step_s;
    }

    let result = TrackingResult {
        policy: policy.name(),
        trainings,
        train_interval_s,
        mean_gbps: geom::stats::mean(&rates).unwrap_or(0.0),
        outage_fraction: outages as f64 / rates.len() as f64,
        mean_rate_gap_gbps: geom::stats::mean(&gaps).unwrap_or(0.0),
        failovers,
        quality: quality.summary(),
    };
    // Per-run rollup for the trace (one span per tracking experiment).
    if let Some(mut span) = obs::sink_active().then(|| obs::span("netsim.tracking")) {
        span.field("trainings", result.trainings as f64);
        span.field("failovers", result.failovers as f64);
        span.field("outage_fraction", result.outage_fraction);
        span.field("mean_gbps", result.mean_gbps);
        span.field("drift_epochs", result.quality.drift_epochs.len() as f64);
        span.field("misselections", result.quality.misselections as f64);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use chamber::{Campaign, CampaignConfig};

    #[test]
    fn yaw_trajectory_is_bounded_and_periodic() {
        for i in 0..400 {
            let t = i as f64 * 0.1;
            let y = yaw_at(t, 10.0, 45.0);
            assert!(y.abs() <= 45.0 + 1e-9, "yaw {y} at {t}");
        }
        // Starts at 0, rises at the rate.
        assert!((yaw_at(1.0, 10.0, 45.0) - 10.0).abs() < 1e-9);
        assert_eq!(yaw_at(5.0, 10.0, 0.0), 0.0);
    }

    fn patterns() -> chamber::SectorPatterns {
        let link = Link::new(Environment::anechoic(3.0));
        let mut dut = Device::talon(90);
        let peer = Device::talon(91);
        let mut campaign = Campaign::new(CampaignConfig::coarse(), 90);
        let mut rng = sub_rng(90, "tracking-campaign");
        campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &peer)
    }

    #[test]
    fn equal_budget_gives_css_more_trainings() {
        let p = patterns();
        let config = TrackingConfig {
            horizon_s: 10.0,
            ..TrackingConfig::default()
        };
        let ssw = tracking_run(&config, TrainingPolicy::ssw(), 90);
        let css = tracking_run(&config, TrainingPolicy::css(p, 14, 90), 90);
        let ratio = css.trainings as f64 / ssw.trainings as f64;
        assert!(
            (2.0..2.6).contains(&ratio),
            "training ratio {ratio} (SSW {} vs CSS {})",
            ssw.trainings,
            css.trainings
        );
        assert!(css.train_interval_s < ssw.train_interval_s);
    }

    #[test]
    fn drift_monitor_flags_a_blockage_epoch() {
        // Heavy, long LoS blockage episodes in a reflective room: the
        // optimum jumps to a reflection while the stale selection keeps
        // pointing through the blocker, so the SNR-loss stream steps and
        // the CUSUM must alarm. No rotation — blockage is the only signal.
        let config = TrackingConfig {
            horizon_s: 10.0,
            rotation_deg_per_s: 0.0,
            rotation_extent_deg: 0.0,
            training_budget: 0.002,
            blockage: BlockageModel {
                rate_per_s: 0.4,
                attenuation_db: (25.0, 30.0),
                duration_s: (1.0, 2.0),
                los_fraction: 1.0,
            },
            ..TrackingConfig::default()
        };
        let before = obs::global().snapshot().counter("health.link_drift");
        let out = tracking_run(&config, TrainingPolicy::ssw(), 92);
        assert!(
            !out.quality.drift_epochs.is_empty(),
            "blockage epochs detected: {:?}",
            out.quality
        );
        assert!(
            obs::global().snapshot().counter("health.link_drift") > before,
            "drift alarms surface as health counters"
        );
    }

    #[test]
    fn quiet_link_raises_no_drift_alarm() {
        let config = TrackingConfig {
            horizon_s: 10.0,
            rotation_deg_per_s: 0.0,
            rotation_extent_deg: 0.0,
            blockage: BlockageModel {
                rate_per_s: 0.0,
                ..BlockageModel::default()
            },
            ..TrackingConfig::default()
        };
        let out = tracking_run(&config, TrainingPolicy::ssw(), 93);
        assert!(
            out.quality.drift_epochs.is_empty(),
            "static unblocked link must not alarm: {:?}",
            out.quality
        );
        // Probe noise causes the occasional >1 dB pick even on a clean
        // static link; what matters is that no *run* of them accumulates.
        assert!(out.quality.misselection_rate < 0.2, "{:?}", out.quality);
    }

    #[test]
    fn faster_retraining_tracks_rotation_better() {
        let p = patterns();
        // Fast rotation and a tight training budget, no blockage: the
        // stock sweep's selection goes stale by ~40° between trainings
        // while CSS refreshes 2.3× as often.
        let config = TrackingConfig {
            horizon_s: 20.0,
            rotation_deg_per_s: 60.0,
            training_budget: 0.002,
            blockage: BlockageModel {
                rate_per_s: 0.0,
                ..BlockageModel::default()
            },
            ..TrackingConfig::default()
        };
        let ssw = tracking_run(&config, TrainingPolicy::ssw(), 91);
        let css = tracking_run(&config, TrainingPolicy::css(p, 14, 91), 91);
        // CSS's fresher selections must not trail the rotating optimum by
        // more than the slow-training sweep does.
        assert!(
            css.mean_rate_gap_gbps <= ssw.mean_rate_gap_gbps + 0.05,
            "gap CSS {:.3} vs SSW {:.3}",
            css.mean_rate_gap_gbps,
            ssw.mean_rate_gap_gbps
        );
        assert!(css.mean_gbps > 0.5, "link stays usable: {}", css.mean_gbps);
    }
}
