//! Room geometry and directional interference.
//!
//! The dense-deployment experiment in [`crate::dense`] charges training
//! airtime but treats data transmissions as orthogonal. This module models
//! the physical layer underneath: node pairs placed in a room, every
//! transmitter interfering with every other receiver through its actual
//! beam pattern. Directional links enable *spatial reuse* — the §8 related
//! work (Park & Gopalakrishnan) analyses exactly this — but §7's point
//! survives: sector sweep probes are sprayed across all directions, so
//! "each sector sweep performed by a pair of nodes pollutes the whole
//! mm-wave channel in all directions" even when data transmissions
//! coexist.
//!
//! [`Room::sinr_matrix`] computes every pair's SINR with all pairs
//! transmitting concurrently; [`Room::sweep_pollution_db`] quantifies how
//! much interference a sweeping node injects into every other receiver,
//! averaged over its probe sectors.

use geom::db::{db_to_linear, linear_to_db};
use geom::sphere::Direction;
use rand::Rng;
use serde::Serialize;
use talon_array::SectorId;
use talon_channel::{Device, LinkBudget, Orientation};

/// One placed link pair.
pub struct PlacedPair {
    /// Transmitter device (oriented towards its receiver).
    pub tx: Device,
    /// Receiver device (oriented towards its transmitter).
    pub rx: Device,
    /// Transmitter position `[x, y]` in meters.
    pub tx_pos: [f64; 2],
    /// Receiver position `[x, y]` in meters.
    pub rx_pos: [f64; 2],
    /// The transmitter's currently selected data sector.
    pub tx_sector: SectorId,
}

/// A rectangular room with placed pairs.
pub struct Room {
    /// Room extent in meters (`[width, depth]`).
    pub size: [f64; 2],
    /// The placed pairs.
    pub pairs: Vec<PlacedPair>,
    /// Link budget shared by all links.
    pub budget: LinkBudget,
}

/// One pair's link report under concurrent operation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PairLink {
    /// Desired-signal SNR (no interference), dB.
    pub snr_db: f64,
    /// SINR with all other pairs transmitting, dB.
    pub sinr_db: f64,
}

impl Room {
    /// Places `n` pairs in a `width × depth` room: transmitters spread on
    /// a jittered grid, each receiver 1.5–4 m away at a random bearing,
    /// both devices facing each other. Every pair's data sector starts as
    /// the broadside sector 63 (callers typically re-train afterwards).
    pub fn place<R: Rng>(rng: &mut R, n: usize, size: [f64; 2], seed: u64) -> Self {
        assert!(n > 0, "room needs pairs");
        let cols = (n as f64).sqrt().ceil() as usize;
        let mut pairs = Vec::with_capacity(n);
        for i in 0..n {
            let (gx, gy) = (i % cols, i / cols);
            let cell_w = size[0] / cols as f64;
            let cell_h = size[1] / n.div_ceil(cols) as f64;
            let tx_pos = [
                (gx as f64 + 0.3 + 0.4 * rng.gen::<f64>()) * cell_w,
                (gy as f64 + 0.3 + 0.4 * rng.gen::<f64>()) * cell_h,
            ];
            let bearing = rng.gen::<f64>() * std::f64::consts::TAU;
            let dist = 1.5 + 2.5 * rng.gen::<f64>();
            let rx_pos = [
                (tx_pos[0] + dist * bearing.cos()).clamp(0.2, size[0] - 0.2),
                (tx_pos[1] + dist * bearing.sin()).clamp(0.2, size[1] - 0.2),
            ];
            // Devices face each other: yaw = world bearing towards peer.
            let yaw_tx = bearing_deg(tx_pos, rx_pos);
            let yaw_rx = bearing_deg(rx_pos, tx_pos);
            let mut tx = Device::talon(seed.wrapping_add(i as u64 * 2));
            let mut rx = Device::talon(seed.wrapping_add(i as u64 * 2 + 1));
            tx.orientation = Orientation::new(yaw_tx, 0.0);
            rx.orientation = Orientation::new(yaw_rx, 0.0);
            pairs.push(PlacedPair {
                tx,
                rx,
                tx_pos,
                rx_pos,
                tx_sector: SectorId(63),
            });
        }
        Room {
            size,
            pairs,
            budget: LinkBudget::default(),
        }
    }

    /// Received power at pair `j`'s receiver from pair `i`'s transmitter
    /// using sector `sector` (dBm). `i == j` gives the desired signal.
    pub fn rx_power_dbm(&self, i: usize, j: usize, sector: SectorId) -> f64 {
        let tx = &self.pairs[i];
        let rx = &self.pairs[j];
        let d = dist(tx.tx_pos, rx.rx_pos).max(0.3);
        // World bearing from the interfering TX towards the victim RX,
        // converted into each device's coordinates. Note: orientations are
        // yaws relative to the world x-axis, so a direction's world
        // azimuth is its bearing.
        let dep_world = Direction::new(bearing_deg(tx.tx_pos, rx.rx_pos), 0.0);
        let arr_world = Direction::new(bearing_deg(rx.rx_pos, tx.tx_pos), 0.0);
        let g_tx = tx.tx.gain_towards_world(
            &tx.tx.codebook.get(sector).expect("sector exists").weights,
            &dep_world,
        );
        let g_rx = rx
            .rx
            .gain_towards_world(&rx.rx.codebook.rx_sector().weights, &arr_world);
        self.budget
            .rx_power_dbm(g_tx, g_rx, self.budget.path_loss_db(d))
    }

    /// SNR and SINR of every pair with all pairs transmitting data
    /// concurrently on their selected sectors.
    pub fn sinr_matrix(&self) -> Vec<PairLink> {
        let n = self.pairs.len();
        (0..n)
            .map(|j| {
                let signal = self.rx_power_dbm(j, j, self.pairs[j].tx_sector);
                let noise_mw = db_to_linear(self.budget.noise_floor_dbm);
                let mut interference_mw = 0.0;
                for i in 0..n {
                    if i != j {
                        interference_mw +=
                            db_to_linear(self.rx_power_dbm(i, j, self.pairs[i].tx_sector));
                    }
                }
                PairLink {
                    snr_db: signal - self.budget.noise_floor_dbm,
                    sinr_db: signal - linear_to_db(noise_mw + interference_mw),
                }
            })
            .collect()
    }

    /// Mean interference power (dBm) a sweep by pair `i` injects into
    /// every other pair's receiver, averaged over all swept sectors —
    /// the §7 "pollution" of one training.
    pub fn sweep_pollution_db(&self, i: usize) -> Vec<f64> {
        let sweep = self.pairs[i].tx.codebook.sweep_order();
        (0..self.pairs.len())
            .filter(|&j| j != i)
            .map(|j| {
                let mean_mw: f64 = sweep
                    .iter()
                    .map(|&s| db_to_linear(self.rx_power_dbm(i, j, s)))
                    .sum::<f64>()
                    / sweep.len() as f64;
                linear_to_db(mean_mw)
            })
            .collect()
    }
}

fn dist(a: [f64; 2], b: [f64; 2]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
}

/// World bearing (degrees) from `a` towards `b`.
fn bearing_deg(a: [f64; 2], b: [f64; 2]) -> f64 {
    (b[1] - a[1]).atan2(b[0] - a[0]).to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;

    fn room(n: usize, seed: u64) -> Room {
        let mut rng = sub_rng(seed, "room");
        Room::place(&mut rng, n, [12.0, 9.0], seed)
    }

    #[test]
    fn placement_stays_inside_the_room() {
        let r = room(16, 1);
        assert_eq!(r.pairs.len(), 16);
        for p in &r.pairs {
            for pos in [p.tx_pos, p.rx_pos] {
                assert!(pos[0] >= 0.0 && pos[0] <= 12.0, "{pos:?}");
                assert!(pos[1] >= 0.0 && pos[1] <= 9.0, "{pos:?}");
            }
            let d = dist(p.tx_pos, p.rx_pos);
            assert!(d > 0.3, "pair separation {d}");
        }
    }

    #[test]
    fn desired_links_are_strong() {
        let r = room(4, 2);
        let links = r.sinr_matrix();
        for (k, l) in links.iter().enumerate() {
            assert!(l.snr_db > 5.0, "pair {k} SNR {:.1}", l.snr_db);
            assert!(l.sinr_db <= l.snr_db + 1e-9, "interference only hurts");
        }
    }

    #[test]
    fn directionality_enables_spatial_reuse() {
        // With beamformed data sectors, most pairs keep a usable SINR even
        // with all pairs active — the spatial-reuse effect.
        let r = room(8, 3);
        let links = r.sinr_matrix();
        let usable = links.iter().filter(|l| l.sinr_db > 2.0).count();
        assert!(usable >= 5, "{usable}/8 pairs usable under concurrency");
    }

    #[test]
    fn sweeps_pollute_more_than_steered_data() {
        // The mean over swept sectors includes beams pointed everywhere;
        // its interference into a victim should (typically) exceed the
        // interference of the steered data sector pointed away. Compare
        // aggregate pollution across victims.
        let r = room(6, 4);
        let pollution = r.sweep_pollution_db(0);
        assert_eq!(pollution.len(), 5);
        let data_interf: Vec<f64> = (1..6)
            .map(|j| r.rx_power_dbm(0, j, r.pairs[0].tx_sector))
            .collect();
        let mean = |xs: &Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
        // Averaged over victims, a full sweep spreads at least comparable
        // energy into the room as the single steered beam.
        assert!(
            mean(&pollution) > mean(&data_interf) - 3.0,
            "sweep pollution {:.1} vs data {:.1}",
            mean(&pollution),
            mean(&data_interf)
        );
    }

    #[test]
    fn sinr_degrades_with_density() {
        let sparse = room(2, 5);
        let dense = room(24, 5);
        let mean_sinr = |r: &Room| {
            let ls = r.sinr_matrix();
            ls.iter().map(|l| l.sinr_db).sum::<f64>() / ls.len() as f64
        };
        assert!(
            mean_sinr(&sparse) > mean_sinr(&dense),
            "sparse {:.1} vs dense {:.1}",
            mean_sinr(&sparse),
            mean_sinr(&dense)
        );
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let a = room(6, 9);
        let b = room(6, 9);
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(x.tx_pos, y.tx_pos);
            assert_eq!(x.rx_pos, y.rx_pos);
        }
    }
}
