//! Dense deployments: training airtime vs aggregate goodput (`ext-dense`).
//!
//! §7: "if we consider dense mm-wave node deployments, we need to keep in
//! mind that each sector sweep performed by a pair of nodes pollutes the
//! whole mm-wave channel in all directions." We model that pollution
//! directly: every pair re-trains `tracking_hz` times per second, each
//! training occupies the shared channel exclusively for the §4.1-model
//! airtime, and only the remaining fraction of the second carries data.
//!
//! Per-pair link rates come from a real simulated training: each pair gets
//! its own device orientation, runs its policy's sweep once through the
//! channel simulator, and the selected sector's true SNR sets its data
//! rate. The experiment therefore captures both effects at once — CSS's
//! smaller airtime bill *and* any selection-quality difference.

use crate::policy::TrainingPolicy;
use chamber::SectorPatterns;
use geom::rng::sub_rng;
use rand::Rng;
use serde::Serialize;
use talon_channel::{DataLinkModel, Device, Environment, Link, Orientation};

/// Configuration of the dense-deployment experiment.
#[derive(Debug, Clone)]
pub struct DenseConfig {
    /// Pair counts to evaluate.
    pub pair_counts: Vec<usize>,
    /// Re-trainings per second per pair (mobile tracking; the Talon's
    /// static default is ~1 Hz, §4.1).
    pub tracking_hz: f64,
    /// Probe budget of the CSS policy.
    pub css_probes: usize,
    /// Data-plane rate model.
    pub rate_model: DataLinkModel,
}

impl Default for DenseConfig {
    fn default() -> Self {
        DenseConfig {
            pair_counts: vec![1, 2, 4, 8, 16, 32, 64],
            tracking_hz: 10.0,
            css_probes: 14,
            rate_model: DataLinkModel::default(),
        }
    }
}

/// One row of the result: a pair count under one policy.
#[derive(Debug, Clone, Serialize)]
pub struct DenseRow {
    /// Number of concurrently active pairs.
    pub pairs: usize,
    /// Fraction of channel airtime consumed by training (capped at 1).
    pub training_airtime: f64,
    /// Sum of pair goodputs after the training tax, Gbps.
    pub aggregate_gbps: f64,
}

/// The experiment result for one policy.
#[derive(Debug, Clone, Serialize)]
pub struct DenseResult {
    /// Policy display name.
    pub policy: String,
    /// One row per pair count.
    pub rows: Vec<DenseRow>,
    /// Largest pair count whose training airtime stays below 100 %.
    pub saturation_pairs: Option<usize>,
}

/// Runs the dense-deployment experiment for one policy.
///
/// `make_policy` constructs a fresh policy per pair (each pair draws its
/// own probe subsets).
pub fn dense_deployment<F>(
    config: &DenseConfig,
    patterns: &SectorPatterns,
    mut make_policy: F,
    seed: u64,
) -> DenseResult
where
    F: FnMut(&SectorPatterns, u64) -> TrainingPolicy,
{
    let mut rng = sub_rng(seed, "dense");
    let mut span = obs::sink_active().then(|| obs::span("netsim.dense"));
    let env = Environment::conference_room();
    let link = Link::new(env);
    let max_pairs = config.pair_counts.iter().copied().max().unwrap_or(0);
    if let Some(span) = &mut span {
        span.field("pairs", max_pairs as f64);
    }

    // Simulate each pair once: orientation, training, achieved rate.
    let mut pair_rates = Vec::with_capacity(max_pairs);
    let mut training_ms = 0.0;
    for p in 0..max_pairs {
        let mut tx = Device::talon(seed.wrapping_add(p as u64 * 2));
        let rx = Device::talon(seed.wrapping_add(p as u64 * 2 + 1));
        // Pairs face each other imperfectly: random yaw within ±50°.
        tx.orientation = Orientation::new(rng.gen_range(-50.0..50.0), 0.0);
        let mut policy = make_policy(patterns, seed.wrapping_add(p as u64));
        training_ms = policy.training_time(34).as_ms();
        let rate = match policy.train(&mut rng, &link, &tx, &rx) {
            Some(sel) => {
                let rxw = rx.codebook.rx_sector().weights.clone();
                let snr = link.true_snr_db(&tx, sel, &rx, &rxw);
                config.rate_model.tcp_gbps(snr)
            }
            None => 0.0,
        };
        pair_rates.push(rate);
    }

    let policy_name = make_policy(patterns, seed).name();
    let mut rows = Vec::with_capacity(config.pair_counts.len());
    let mut saturation_pairs = None;
    for &n in &config.pair_counts {
        // Training airtime fraction of the shared channel.
        let airtime = (n as f64 * config.tracking_hz * training_ms / 1000.0).min(1.0);
        let data_share = 1.0 - airtime;
        // TDMA data sharing among the pairs: each gets an equal slice of
        // the remaining airtime; aggregate = mean pair rate × share.
        let mean_rate = geom::stats::mean(&pair_rates[..n]).unwrap_or(0.0);
        let aggregate = mean_rate * data_share;
        if airtime < 1.0 {
            saturation_pairs = Some(n);
        } else {
            // Training alone eats the whole channel: no data airtime left
            // at this density for this policy.
            obs::health::anomaly(
                "airtime_saturated",
                &[
                    ("pairs", n as f64),
                    ("training_ms", training_ms),
                    ("tracking_hz", config.tracking_hz),
                ],
            );
        }
        rows.push(DenseRow {
            pairs: n,
            training_airtime: airtime,
            aggregate_gbps: aggregate,
        });
    }
    DenseResult {
        policy: policy_name,
        rows,
        saturation_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chamber::{Campaign, CampaignConfig};

    fn patterns() -> SectorPatterns {
        let link = Link::new(Environment::anechoic(3.0));
        let mut dut = Device::talon(80);
        let peer = Device::talon(81);
        let mut campaign = Campaign::new(CampaignConfig::coarse(), 80);
        let mut rng = sub_rng(80, "dense-campaign");
        campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &peer)
    }

    #[test]
    fn css_sustains_more_pairs_than_ssw() {
        let p = patterns();
        let config = DenseConfig {
            pair_counts: vec![1, 8, 32, 64],
            ..DenseConfig::default()
        };
        let ssw = dense_deployment(&config, &p, |_, _| TrainingPolicy::ssw(), 80);
        let css = dense_deployment(
            &config,
            &p,
            |pat, s| TrainingPolicy::css(pat.clone(), 14, s),
            80,
        );
        // CSS's airtime bill is ~2.3× smaller at every pair count.
        for (a, b) in ssw.rows.iter().zip(&css.rows) {
            assert!(a.training_airtime >= b.training_airtime);
            if a.training_airtime < 1.0 {
                let ratio = a.training_airtime / b.training_airtime;
                assert!((ratio - 2.3).abs() < 0.05, "airtime ratio {ratio}");
            }
        }
        // And the saturation point is strictly higher.
        assert!(css.saturation_pairs >= ssw.saturation_pairs);
        // At 10 Hz tracking, SSW saturates at ~78 pairs, CSS at ~180; the
        // 64-pair row must still be unsaturated for CSS but heavily taxed
        // for SSW.
        let ssw64 = ssw.rows.last().unwrap();
        let css64 = css.rows.last().unwrap();
        assert!(ssw64.training_airtime > 0.75, "{}", ssw64.training_airtime);
        assert!(css64.training_airtime < 0.4, "{}", css64.training_airtime);
        assert!(css64.aggregate_gbps > ssw64.aggregate_gbps);
    }

    #[test]
    fn airtime_grows_linearly_until_saturation() {
        let p = patterns();
        let config = DenseConfig {
            pair_counts: vec![1, 2, 4],
            ..DenseConfig::default()
        };
        let r = dense_deployment(&config, &p, |_, _| TrainingPolicy::ssw(), 81);
        let a1 = r.rows[0].training_airtime;
        assert!((r.rows[1].training_airtime - 2.0 * a1).abs() < 1e-12);
        assert!((r.rows[2].training_airtime - 4.0 * a1).abs() < 1e-12);
    }
}
