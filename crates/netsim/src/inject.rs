//! Deterministic link-quality fault profiles for live-monitoring drills.
//!
//! `talon serve --inject-drift` needs a repeatable "the link went bad and
//! then recovered" scenario to drive the [`obs`] quality monitor and alert
//! engine end to end: the acceptance test asserts `/healthz` flips to 503
//! while the drift alert fires and back to 200 after hysteresis clears,
//! with the *same* alert transition sequence on every run. A
//! [`DriftProfile`] is that scenario: a pure function from sampler tick to
//! the SNR loss (dB vs the oracle-best sector) the serving link shows at
//! that tick. No randomness, no clock reads — determinism is the point.

/// A step-shaped SNR-loss timeline: `healthy_loss_db` everywhere except
/// the ticks in `[onset_tick, clear_tick)`, which show `drift_loss_db`.
///
/// Fed to [`obs::QualityMonitor::record_loss`] once per sampler tick, the
/// step exercises the full alert lifecycle: the CUSUM detector opens a
/// drift epoch at onset (`health.link_drift`), the sustained loss gauge
/// holds the `snr_loss_high` page alert firing, and the drop back to
/// `healthy_loss_db` walks it through hysteresis to resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftProfile {
    /// SNR loss outside the drift window, dB.
    pub healthy_loss_db: f64,
    /// SNR loss during the drift window, dB.
    pub drift_loss_db: f64,
    /// First tick (inclusive) showing `drift_loss_db`.
    pub onset_tick: u64,
    /// First tick at or after which the link is healthy again.
    pub clear_tick: u64,
}

impl DriftProfile {
    /// The stock drill used by `talon serve --inject-drift`: a healthy
    /// 1 dB link that degrades to 25 dB at tick 10 and recovers at tick
    /// 25. The numbers are chosen against the default rules: 25 dB
    /// (25 000 milli-dB) is far above the 6 dB `snr_loss_high` page
    /// threshold, and 1 dB is below its 2 dB clear threshold.
    pub fn demo() -> Self {
        DriftProfile {
            healthy_loss_db: 1.0,
            drift_loss_db: 25.0,
            onset_tick: 10,
            clear_tick: 25,
        }
    }

    /// The per-link fleet variant of [`DriftProfile::demo`]: link `i`
    /// degrades at tick `10 + 3i` and recovers at `25 + 3i`, so a fleet
    /// drill sees staggered (but overlapping) per-link drift episodes and
    /// per-link template alerts fire at distinct, deterministic ticks.
    /// `demo_link(0)` is exactly [`DriftProfile::demo`], which keeps the
    /// aggregate single-episode `/healthz` contract of the stock drill
    /// intact when link 0 doubles as the aggregate feed.
    pub fn demo_link(i: u64) -> Self {
        let stagger = 3 * i;
        DriftProfile {
            onset_tick: 10 + stagger,
            clear_tick: 25 + stagger,
            ..DriftProfile::demo()
        }
    }

    /// The SNR loss the link shows at `tick`.
    pub fn loss_at(&self, tick: u64) -> f64 {
        if tick >= self.onset_tick && tick < self.clear_tick {
            self.drift_loss_db
        } else {
            self.healthy_loss_db
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_profile_is_healthy_outside_the_window() {
        let p = DriftProfile::demo();
        assert_eq!(p.loss_at(0), 1.0);
        assert_eq!(p.loss_at(9), 1.0);
        assert_eq!(p.loss_at(10), 25.0);
        assert_eq!(p.loss_at(24), 25.0);
        assert_eq!(p.loss_at(25), 1.0);
        assert_eq!(p.loss_at(1000), 1.0);
    }

    #[test]
    fn fleet_profiles_stagger_but_keep_link_zero_stock() {
        assert_eq!(DriftProfile::demo_link(0), DriftProfile::demo());
        let p1 = DriftProfile::demo_link(1);
        let p2 = DriftProfile::demo_link(2);
        assert_eq!((p1.onset_tick, p1.clear_tick), (13, 28));
        assert_eq!((p2.onset_tick, p2.clear_tick), (16, 31));
        // Episodes overlap, so the fleet drill exercises concurrent
        // per-link firing, not a serialized relay.
        assert!(p2.onset_tick < DriftProfile::demo().clear_tick);
    }

    #[test]
    fn demo_profile_straddles_the_default_alert_thresholds() {
        // Keep the drill honest against obs::default_rules(): drift must
        // exceed the 6 dB page threshold and recovery must fall under the
        // 2 dB clear threshold, or the e2e healthz flip can never happen.
        let p = DriftProfile::demo();
        assert!(p.drift_loss_db * 1000.0 > 6000.0);
        assert!(p.healthy_loss_db * 1000.0 <= 2000.0);
        assert!(p.onset_tick < p.clear_tick);
    }
}
