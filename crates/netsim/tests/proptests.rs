//! Property-based tests for the network-scale simulations.

use geom::rng::sub_rng;
use netsim::dense::{dense_deployment, DenseConfig};
use netsim::policy::TrainingPolicy;
use netsim::Room;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared coarse pattern store (campaigns are the expensive part).
fn patterns() -> &'static chamber::SectorPatterns {
    static STORE: OnceLock<chamber::SectorPatterns> = OnceLock::new();
    STORE.get_or_init(|| {
        use talon_channel::{Device, Environment, Link};
        let link = Link::new(Environment::anechoic(3.0));
        let mut dut = Device::talon(7000);
        let peer = Device::talon(7001);
        let mut campaign = chamber::Campaign::new(chamber::CampaignConfig::coarse(), 7000);
        let mut rng = sub_rng(7000, "netsim-prop-campaign");
        campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &peer)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn room_placement_invariants(n in 1usize..24, seed in 0u64..64) {
        let mut rng = sub_rng(seed, "prop-room");
        let room = Room::place(&mut rng, n, [10.0, 8.0], seed);
        prop_assert_eq!(room.pairs.len(), n);
        for p in &room.pairs {
            for pos in [p.tx_pos, p.rx_pos] {
                prop_assert!(pos[0] >= 0.0 && pos[0] <= 10.0);
                prop_assert!(pos[1] >= 0.0 && pos[1] <= 8.0);
            }
        }
        // SINR never exceeds SNR.
        for l in room.sinr_matrix() {
            prop_assert!(l.sinr_db <= l.snr_db + 1e-9);
            prop_assert!(l.snr_db.is_finite());
        }
    }

    #[test]
    fn dense_airtime_is_monotone_in_pairs_and_bounded(
        hz in 1.0f64..30.0,
        seed in 0u64..16,
    ) {
        let config = DenseConfig {
            pair_counts: vec![1, 4, 16],
            tracking_hz: hz,
            ..DenseConfig::default()
        };
        let res = dense_deployment(&config, patterns(), |_, _| TrainingPolicy::ssw(), seed);
        let airtimes: Vec<f64> = res.rows.iter().map(|r| r.training_airtime).collect();
        prop_assert!(airtimes.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        prop_assert!(airtimes.iter().all(|&a| (0.0..=1.0).contains(&a)));
        prop_assert!(res.rows.iter().all(|r| r.aggregate_gbps >= 0.0));
    }

    #[test]
    fn css_airtime_is_always_cheaper(m in 2usize..34, seed in 0u64..8) {
        let css = TrainingPolicy::css(patterns().clone(), m, seed);
        let ssw = TrainingPolicy::ssw();
        prop_assert!(css.training_time(34) < ssw.training_time(34));
        prop_assert_eq!(css.probes(34), m);
    }
}
