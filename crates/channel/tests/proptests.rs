//! Property-based tests for the channel and measurement models.

use geom::rng::sub_rng;
use proptest::prelude::*;
use talon_channel::{
    BlockageModel, DataLinkModel, Device, DynamicEnvironment, Environment, Link, LinkBudget,
    MeasurementModel, Orientation,
};

proptest! {
    #[test]
    fn path_loss_is_monotone_in_distance(d1 in 0.1f64..100.0, d2 in 0.1f64..100.0) {
        prop_assume!(d1 < d2);
        let lb = LinkBudget::default();
        prop_assert!(lb.path_loss_db(d1) < lb.path_loss_db(d2));
    }

    #[test]
    fn snr_is_linear_in_gains(g1 in -20.0f64..25.0, g2 in -20.0f64..25.0, d in 0.5f64..20.0) {
        let lb = LinkBudget::default();
        let pl = lb.path_loss_db(d);
        let a = lb.snr_db(lb.rx_power_dbm(g1, g2, pl));
        let b = lb.snr_db(lb.rx_power_dbm(g1 + 3.0, g2, pl));
        prop_assert!((b - a - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reports_stay_in_format_ranges(
        snr in -40.0f64..60.0,
        rssi in -120.0f64..-10.0,
        seed in any::<u64>(),
    ) {
        let m = MeasurementModel::default();
        let mut rng = sub_rng(seed, "prop-meas");
        for _ in 0..16 {
            if let Some(r) = m.report(&mut rng, snr, rssi) {
                prop_assert!((-7.0..=12.0).contains(&r.snr_db), "SNR {}", r.snr_db);
                prop_assert!((-100.0..=-20.0).contains(&r.rssi_dbm), "RSSI {}", r.rssi_dbm);
            }
        }
    }

    #[test]
    fn decode_probability_is_monotone(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        prop_assume!(a < b);
        let m = MeasurementModel::default();
        prop_assert!(m.decode_prob(a) <= m.decode_prob(b));
    }

    #[test]
    fn orientation_roundtrip(
        yaw in -180.0f64..180.0,
        tilt in -45.0f64..45.0,
        az in -90.0f64..90.0,
        el in -45.0f64..45.0,
    ) {
        let o = Orientation::new(yaw, tilt);
        let d = geom::Direction::new(az, el);
        let back = o.device_to_world(&o.world_to_device(&d));
        prop_assert!((back.az_deg - d.az_deg).abs() < 1e-9);
        prop_assert!((back.el_deg - d.el_deg).abs() < 1e-9);
    }

    #[test]
    fn rotating_tx_changes_rx_power_smoothly(seed in 0u64..16, yaw in -60.0f64..60.0) {
        let link = Link::new(Environment::anechoic(3.0));
        let mut tx = Device::talon(seed);
        let rx = Device::talon(seed + 1);
        let rxw = rx.codebook.rx_sector().weights.clone();
        let txw = tx.codebook.get(talon_array::SectorId(63)).unwrap().weights.clone();
        tx.orientation = Orientation::new(yaw, 0.0);
        let p1 = link.rx_power_dbm(&tx, &txw, &rx, &rxw);
        tx.orientation = Orientation::new(yaw + 0.1, 0.0);
        let p2 = link.rx_power_dbm(&tx, &txw, &rx, &rxw);
        // 0.1° of rotation cannot change the power catastrophically.
        // Deep pattern nulls have steep skirts, so the bound is loose —
        // the property guards against discontinuities, not against nulls.
        prop_assert!((p1 - p2).abs() < 15.0, "{p1} vs {p2} at yaw {yaw}");
        prop_assert!(p1.is_finite() && p2.is_finite());
    }

    #[test]
    fn blockage_never_reduces_loss(seed in any::<u64>(), t in 0.0f64..30.0) {
        let mut rng = sub_rng(seed, "prop-blockage");
        let dynenv = DynamicEnvironment::with_blockage(
            Environment::conference_room(),
            &BlockageModel::default(),
            &mut rng,
            30.0,
        );
        let env = dynenv.at(t);
        let base = &dynenv.base;
        for (a, b) in base.rays.iter().zip(&env.rays) {
            prop_assert!(b.reflection_loss_db >= a.reflection_loss_db);
            prop_assert_eq!(a.length_m, b.length_m);
        }
    }

    #[test]
    fn mcs_rate_is_monotone_in_snr(a in -30.0f64..40.0, b in -30.0f64..40.0) {
        prop_assume!(a <= b);
        let m = DataLinkModel::default();
        prop_assert!(m.tcp_gbps(a) <= m.tcp_gbps(b));
    }
}
