//! 60 GHz mm-wave channel and measurement simulator.
//!
//! This crate replaces the physical radio environment of the paper's
//! experiments:
//!
//! * [`orientation`] — device mounting/rotation state (the rotation head
//!   turns the device under test; rays are defined in world coordinates and
//!   converted into device coordinates here).
//! * [`environment`] — ray-based propagation environments: the anechoic
//!   chamber (§4.2, single line-of-sight ray), the lab (3 m LoS plus weak
//!   reflections) and the conference room (6 m LoS plus strong whiteboard
//!   reflections, §6.1).
//! * [`linkbudget`] — Friis path loss at 60.48 GHz, oxygen absorption,
//!   thermal noise floor of the 1.76 GHz 802.11ad channel.
//! * [`measurement`] — the low-cost firmware measurement process: per-frame
//!   fading, quarter-dB SNR quantization clamped to [−7, 12] dB, coarser
//!   RSSI with *independent* fluctuations, outliers that grow at low SNR,
//!   and missing reports ("sometimes the firmware does not report any
//!   measurements at all", §5).
//! * [`link`] — ties a transmit device, a receive device and an environment
//!   together and produces per-frame probe readings for a given sector.
//! * [`dynamics`] — time-varying blockage episodes on top of the static
//!   environments, for mobility/blockage tracking experiments (§7).
//! * [`rate`] — the 802.11ad SC-PHY MCS table and the probe-SNR → TCP
//!   goodput mapping used by the throughput experiments.
//!
//! Everything is deterministic given an RNG; no wall-clock time or global
//! state is involved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod environment;
pub mod link;
pub mod linkbudget;
pub mod measurement;
pub mod orientation;
pub mod rate;

pub use dynamics::{Blockage, BlockageModel, DynamicEnvironment};
pub use environment::{Environment, Ray};
pub use link::{Device, Link, SweepReading};
pub use linkbudget::LinkBudget;
pub use measurement::{Measurement, MeasurementModel};
pub use orientation::Orientation;
pub use rate::{DataLinkModel, McsEntry, MCS_TABLE};
