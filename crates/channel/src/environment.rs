//! Ray-based propagation environments.
//!
//! Each environment is a small set of [`Ray`]s between the two devices:
//! the line-of-sight path plus zero or more single-bounce reflections
//! (image-source model). Ray directions are given in *world* coordinates;
//! the link layer converts them into each device's coordinates using the
//! device orientations.
//!
//! The three environments mirror the paper's setups:
//!
//! * [`Environment::anechoic`] — 3 m, LoS only (§4.2: "anechoic chamber to
//!   omit disturbing reflections and multi-path effects").
//! * [`Environment::lab`] — 3 m LoS plus two weak wall reflections (§6.1).
//! * [`Environment::conference_room`] — 6 m LoS plus stronger reflectors
//!   ("a couple of potential reflectors such as white-boards", §6.1).

use crate::linkbudget::LinkBudget;
use geom::sphere::Direction;
use serde::{Deserialize, Serialize};

/// One propagation path between transmitter and receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Departure direction at the transmitter, world coordinates.
    pub depart_world: Direction,
    /// Arrival direction at the receiver, world coordinates.
    pub arrive_world: Direction,
    /// Total geometric path length in meters.
    pub length_m: f64,
    /// Extra loss beyond free space (reflection coefficient), dB.
    pub reflection_loss_db: f64,
}

impl Ray {
    /// Total propagation loss of this ray under a link budget.
    pub fn total_loss_db(&self, budget: &LinkBudget) -> f64 {
        budget.path_loss_db(self.length_m) + self.reflection_loss_db
    }
}

/// A named set of rays between the two devices of an experiment.
///
/// World-coordinate convention: the receiver sits at world azimuth 0 as seen
/// from the transmitter, and vice versa (the devices face each other, as in
/// Fig. 3). Rotating a device changes its *orientation*, not the rays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Human-readable name for reports.
    pub name: String,
    /// Propagation paths, strongest (LoS) first.
    pub rays: Vec<Ray>,
    /// Nominal device separation in meters.
    pub distance_m: f64,
}

impl Environment {
    /// The anechoic chamber: a single LoS ray at the given distance
    /// (3 m in the paper's campaign).
    pub fn anechoic(distance_m: f64) -> Self {
        Environment {
            name: format!("anechoic-{distance_m}m"),
            rays: vec![Ray {
                depart_world: Direction::new(0.0, 0.0),
                arrive_world: Direction::new(0.0, 0.0),
                length_m: distance_m,
                reflection_loss_db: 0.0,
            }],
            distance_m,
        }
    }

    /// The lab environment of §6.1: 3 m separation, LoS plus two weak
    /// side-wall reflections.
    pub fn lab() -> Self {
        let d = 3.0;
        Environment {
            name: "lab".into(),
            rays: vec![
                Ray {
                    depart_world: Direction::new(0.0, 0.0),
                    arrive_world: Direction::new(0.0, 0.0),
                    length_m: d,
                    reflection_loss_db: 0.0,
                },
                // Side wall ~1.2 m to the left: image source geometry.
                wall_bounce(d, 1.2, -14.0),
                // Ceiling bounce, arriving from above.
                ceiling_bounce(d, 1.0, -16.0),
            ],
            distance_m: d,
        }
    }

    /// The conference room of §6.1: 6 m separation, LoS plus stronger
    /// multipath (whiteboard on one side, table reflection).
    pub fn conference_room() -> Self {
        let d = 6.0;
        Environment {
            name: "conference-room".into(),
            rays: vec![
                Ray {
                    depart_world: Direction::new(0.0, 0.0),
                    arrive_world: Direction::new(0.0, 0.0),
                    length_m: d,
                    reflection_loss_db: 0.0,
                },
                // Whiteboard ~1.5 m to the right: the strongest reflector
                // (smooth surfaces at 60 GHz typically sit 10–15 dB below
                // the line of sight).
                wall_bounce(d, -1.5, -11.0),
                // Opposite wall, weaker.
                wall_bounce(d, 2.0, -16.0),
                // Table reflection from below.
                Ray {
                    depart_world: Direction::new(0.0, -16.0),
                    arrive_world: Direction::new(0.0, -16.0),
                    length_m: (d * d + 4.0 * 0.85 * 0.85).sqrt(),
                    reflection_loss_db: 14.0,
                },
            ],
            distance_m: d,
        }
    }

    /// The line-of-sight ray (always the first entry).
    pub fn los(&self) -> &Ray {
        &self.rays[0]
    }
}

/// Builds a single-bounce side-wall ray for devices `d` meters apart with
/// the wall `offset_m` to the side (sign = world azimuth sign of the bounce
/// direction at the transmitter).
fn wall_bounce(d: f64, offset_m: f64, refl_loss_db: f64) -> Ray {
    // Image-source: bounce point at half distance, lateral offset `offset`.
    let az = (2.0 * offset_m / d).atan().to_degrees();
    let length = (d * d + 4.0 * offset_m * offset_m).sqrt();
    Ray {
        depart_world: Direction::new(az, 0.0),
        arrive_world: Direction::new(-az, 0.0),
        length_m: length,
        reflection_loss_db: refl_loss_db.abs(),
    }
}

/// Builds a ceiling-bounce ray arriving from positive elevation.
fn ceiling_bounce(d: f64, height_m: f64, refl_loss_db: f64) -> Ray {
    let el = (2.0 * height_m / d).atan().to_degrees();
    let length = (d * d + 4.0 * height_m * height_m).sqrt();
    Ray {
        depart_world: Direction::new(0.0, el),
        arrive_world: Direction::new(0.0, el),
        length_m: length,
        reflection_loss_db: refl_loss_db.abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anechoic_is_los_only() {
        let e = Environment::anechoic(3.0);
        assert_eq!(e.rays.len(), 1);
        assert_eq!(e.los().length_m, 3.0);
        assert_eq!(e.los().reflection_loss_db, 0.0);
        assert_eq!(e.los().depart_world, Direction::new(0.0, 0.0));
    }

    #[test]
    fn lab_and_conference_have_multipath() {
        assert!(Environment::lab().rays.len() >= 3);
        assert!(Environment::conference_room().rays.len() >= 3);
    }

    #[test]
    fn reflections_are_longer_and_lossier_than_los() {
        for env in [Environment::lab(), Environment::conference_room()] {
            let los = env.los();
            let budget = LinkBudget::default();
            for ray in &env.rays[1..] {
                assert!(ray.length_m > los.length_m, "{}", env.name);
                assert!(
                    ray.total_loss_db(&budget) > los.total_loss_db(&budget) + 3.0,
                    "{}: reflection must be clearly weaker",
                    env.name
                );
            }
        }
    }

    #[test]
    fn wall_bounce_geometry() {
        let r = wall_bounce(6.0, -1.5, -7.0);
        // atan(2·1.5/6) = atan(0.5) ≈ 26.57°, on the negative side.
        assert!((r.depart_world.az_deg + 26.565).abs() < 0.01);
        assert!((r.arrive_world.az_deg - 26.565).abs() < 0.01);
        assert!((r.length_m - (36.0 + 9.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(r.reflection_loss_db, 7.0);
    }

    #[test]
    fn ceiling_bounce_arrives_from_above() {
        let r = ceiling_bounce(3.0, 1.0, -16.0);
        assert!(r.depart_world.el_deg > 0.0);
        assert!(r.length_m > 3.0);
    }

    #[test]
    fn conference_room_has_a_strong_reflector() {
        // The whiteboard path must be within ~15 dB of LoS so it can create
        // visible multipath effects in the estimator.
        let env = Environment::conference_room();
        let b = LinkBudget::default();
        let los = env.los().total_loss_db(&b);
        let strongest_refl = env.rays[1..]
            .iter()
            .map(|r| r.total_loss_db(&b))
            .fold(f64::INFINITY, f64::min);
        assert!(strongest_refl - los < 15.0);
    }
}
