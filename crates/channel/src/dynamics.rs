//! Time-varying channel dynamics: blockage and environment evolution.
//!
//! The paper's discussion (§7, and the BeamSpy line of related work in §8)
//! motivates fast re-training with mobility and blockage: "highly
//! directional mm-wave connections [are] threatened by mobility and
//! blockage". This module adds the time dimension the static
//! [`crate::environment::Environment`] lacks:
//!
//! * [`Blockage`] — one blockage episode: an interval during which a ray
//!   suffers extra attenuation (a person crossing the LoS costs 15–25 dB
//!   at 60 GHz and lasts a few hundred milliseconds).
//! * [`BlockageModel`] — a Poisson process over a time horizon that
//!   generates reproducible episodes.
//! * [`DynamicEnvironment`] — the base environment plus its episodes;
//!   `at(t)` materializes the effective environment at time `t`.

use crate::environment::Environment;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One blockage episode affecting one ray.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blockage {
    /// Index of the affected ray in the environment's ray list
    /// (0 = line of sight).
    pub ray: usize,
    /// Episode start, seconds.
    pub start_s: f64,
    /// Episode end, seconds.
    pub end_s: f64,
    /// Extra attenuation while active, dB.
    pub attenuation_db: f64,
}

impl Blockage {
    /// Whether the episode is active at time `t`.
    pub fn active_at(&self, t_s: f64) -> bool {
        (self.start_s..self.end_s).contains(&t_s)
    }
}

/// Parameters of the blockage process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockageModel {
    /// Mean episodes per second (Poisson arrival rate).
    pub rate_per_s: f64,
    /// Attenuation range, dB.
    pub attenuation_db: (f64, f64),
    /// Episode duration range, seconds.
    pub duration_s: (f64, f64),
    /// Probability that an episode hits the LoS ray (otherwise a random
    /// reflection).
    pub los_fraction: f64,
}

impl Default for BlockageModel {
    fn default() -> Self {
        BlockageModel {
            rate_per_s: 0.5,
            attenuation_db: (15.0, 25.0),
            duration_s: (0.1, 0.5),
            los_fraction: 0.8,
        }
    }
}

impl BlockageModel {
    /// Generates the episodes of a time horizon.
    pub fn generate<R: Rng>(&self, rng: &mut R, horizon_s: f64, num_rays: usize) -> Vec<Blockage> {
        assert!(num_rays > 0, "environment needs rays");
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            // Exponential inter-arrival times.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            t += -u.ln() / self.rate_per_s;
            if t >= horizon_s {
                break;
            }
            let ray = if rng.gen::<f64>() < self.los_fraction || num_rays == 1 {
                0
            } else {
                1 + rng.gen_range(0..num_rays - 1)
            };
            let dur = rng.gen_range(self.duration_s.0..=self.duration_s.1);
            let att = rng.gen_range(self.attenuation_db.0..=self.attenuation_db.1);
            out.push(Blockage {
                ray,
                start_s: t,
                end_s: t + dur,
                attenuation_db: att,
            });
        }
        out
    }
}

/// An environment whose rays can be blocked over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicEnvironment {
    /// The unblocked base environment.
    pub base: Environment,
    /// All blockage episodes of the simulated horizon.
    pub episodes: Vec<Blockage>,
}

impl DynamicEnvironment {
    /// Wraps a static environment with a generated blockage trace.
    pub fn with_blockage<R: Rng>(
        base: Environment,
        model: &BlockageModel,
        rng: &mut R,
        horizon_s: f64,
    ) -> Self {
        let episodes = model.generate(rng, horizon_s, base.rays.len());
        DynamicEnvironment { base, episodes }
    }

    /// A static wrapper with no episodes.
    pub fn still(base: Environment) -> Self {
        DynamicEnvironment {
            base,
            episodes: Vec::new(),
        }
    }

    /// The effective environment at time `t`: active episodes add their
    /// attenuation to their ray's reflection loss.
    pub fn at(&self, t_s: f64) -> Environment {
        let mut env = self.base.clone();
        for ep in &self.episodes {
            if ep.active_at(t_s) && ep.ray < env.rays.len() {
                env.rays[ep.ray].reflection_loss_db += ep.attenuation_db;
            }
        }
        env
    }

    /// Whether any episode blocks the LoS at time `t`.
    pub fn los_blocked_at(&self, t_s: f64) -> bool {
        self.episodes
            .iter()
            .any(|ep| ep.ray == 0 && ep.active_at(t_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;

    #[test]
    fn poisson_process_has_expected_rate() {
        let model = BlockageModel {
            rate_per_s: 2.0,
            ..BlockageModel::default()
        };
        let mut rng = sub_rng(1, "blockage");
        let eps = model.generate(&mut rng, 500.0, 4);
        // ~1000 expected; allow generous slack.
        assert!(
            (800..1200).contains(&eps.len()),
            "episode count {}",
            eps.len()
        );
        for ep in &eps {
            assert!(ep.end_s > ep.start_s);
            assert!(ep.attenuation_db >= 15.0 && ep.attenuation_db <= 25.0);
            assert!(ep.ray < 4);
        }
    }

    #[test]
    fn most_episodes_hit_the_los() {
        let model = BlockageModel::default();
        let mut rng = sub_rng(2, "blockage");
        let eps = model.generate(&mut rng, 2000.0, 4);
        let los = eps.iter().filter(|e| e.ray == 0).count();
        let frac = los as f64 / eps.len() as f64;
        assert!((0.7..0.9).contains(&frac), "LoS fraction {frac}");
    }

    #[test]
    fn blockage_raises_ray_loss_only_while_active() {
        let base = Environment::conference_room();
        let dynenv = DynamicEnvironment {
            base: base.clone(),
            episodes: vec![Blockage {
                ray: 0,
                start_s: 1.0,
                end_s: 1.3,
                attenuation_db: 20.0,
            }],
        };
        let before = dynenv.at(0.5);
        let during = dynenv.at(1.1);
        let after = dynenv.at(2.0);
        assert_eq!(before, base);
        assert_eq!(after, base);
        assert_eq!(
            during.rays[0].reflection_loss_db,
            base.rays[0].reflection_loss_db + 20.0
        );
        assert!(dynenv.los_blocked_at(1.1));
        assert!(!dynenv.los_blocked_at(0.5));
    }

    #[test]
    fn overlapping_episodes_stack() {
        let base = Environment::anechoic(3.0);
        let dynenv = DynamicEnvironment {
            base,
            episodes: vec![
                Blockage {
                    ray: 0,
                    start_s: 0.0,
                    end_s: 1.0,
                    attenuation_db: 10.0,
                },
                Blockage {
                    ray: 0,
                    start_s: 0.5,
                    end_s: 1.5,
                    attenuation_db: 5.0,
                },
            ],
        };
        assert_eq!(dynenv.at(0.7).rays[0].reflection_loss_db, 15.0);
        assert_eq!(dynenv.at(1.2).rays[0].reflection_loss_db, 5.0);
    }

    #[test]
    fn still_environment_never_changes() {
        let dynenv = DynamicEnvironment::still(Environment::lab());
        assert_eq!(dynenv.at(0.0), dynenv.at(100.0));
        assert!(!dynenv.los_blocked_at(50.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let model = BlockageModel::default();
        let a = model.generate(&mut sub_rng(9, "b"), 100.0, 2);
        let b = model.generate(&mut sub_rng(9, "b"), 100.0, 2);
        assert_eq!(a, b);
    }
}
