//! 60 GHz link budget: path loss and noise floor.
//!
//! The high free-space loss of the mm-wave band is the whole reason 802.11ad
//! needs beamforming (§1). We use Friis free-space loss at the carrier plus
//! the ~16 dB/km oxygen absorption peak around 60 GHz, and the thermal noise
//! floor of the 1.76 GHz-wide 802.11ad channel with a consumer-grade noise
//! figure.
//!
//! Calibration: the control-PHY probe frames enjoy a large spreading gain,
//! so their *physical* SNR at the paper's 3 m chamber distance is around
//! 25 dB for the best sector. The firmware reports SNR on its own internal
//! scale, clamped to [−7, 12] dB — that offset lives in
//! [`crate::measurement::MeasurementModel::report_offset_db`], chosen so
//! the best 3 m sector *reports* ≈ 11 dB, right below the clamp, matching
//! the dynamic range visible in Fig. 5/6.

use serde::{Deserialize, Serialize};
use talon_array::wavelength_m;

/// Static link-budget parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Effective probe transmit power, dBm (includes implementation loss).
    pub tx_power_dbm: f64,
    /// Oxygen absorption, dB per meter (≈ 0.016 at 60 GHz).
    pub oxygen_db_per_m: f64,
    /// Receiver noise floor, dBm (thermal + noise figure over 1.76 GHz).
    pub noise_floor_dbm: f64,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget {
            // Calibrated: peak sector ≈ 20 dBi TX, quasi-omni ≈ 5 dBi RX,
            // 3 m → FSPL 77.6 dB ⇒ physical probe SNR ≈ 25 dB.
            tx_power_dbm: 6.0,
            oxygen_db_per_m: 0.016,
            // kTB = −174 dBm/Hz + 10·log10(1.76 GHz) ≈ −81.5 dBm, NF 10 dB.
            noise_floor_dbm: -71.5,
        }
    }
}

impl LinkBudget {
    /// Free-space path loss over `distance_m`, in dB (Friis), including
    /// oxygen absorption.
    ///
    /// # Panics
    /// Panics on non-positive distances.
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        assert!(distance_m > 0.0, "path loss needs a positive distance");
        let fspl = 20.0 * (4.0 * std::f64::consts::PI * distance_m / wavelength_m()).log10();
        fspl + self.oxygen_db_per_m * distance_m
    }

    /// Received power in dBm given total antenna gains and path loss.
    pub fn rx_power_dbm(&self, tx_gain_dbi: f64, rx_gain_dbi: f64, path_loss_db: f64) -> f64 {
        self.tx_power_dbm + tx_gain_dbi + rx_gain_dbi - path_loss_db
    }

    /// True SNR in dB for a received power.
    pub fn snr_db(&self, rx_power_dbm: f64) -> f64 {
        rx_power_dbm - self.noise_floor_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_at_one_meter() {
        let lb = LinkBudget::default();
        // 20·log10(4π/λ) at λ≈4.957 mm → ≈ 68.1 dB.
        let pl = lb.path_loss_db(1.0);
        assert!((pl - 68.1).abs() < 0.2, "{pl}");
    }

    #[test]
    fn fspl_doubles_distance_adds_6db() {
        let lb = LinkBudget {
            oxygen_db_per_m: 0.0,
            ..LinkBudget::default()
        };
        let d = lb.path_loss_db(6.0) - lb.path_loss_db(3.0);
        assert!((d - 6.0206).abs() < 1e-3, "{d}");
    }

    #[test]
    fn oxygen_absorption_accumulates() {
        let with = LinkBudget::default();
        let without = LinkBudget {
            oxygen_db_per_m: 0.0,
            ..with
        };
        let delta = with.path_loss_db(100.0) - without.path_loss_db(100.0);
        assert!((delta - 1.6).abs() < 1e-9);
    }

    #[test]
    fn calibration_gives_strong_physical_snr_at_3m() {
        // Peak sector (≈20 dBi) to quasi-omni (≈5 dBi) at 3 m: ≈ 25 dB of
        // physical probe SNR (so the 14 dB report offset puts the report
        // just under the 12 dB firmware clamp).
        let lb = LinkBudget::default();
        let pl = lb.path_loss_db(3.0);
        let rx = lb.rx_power_dbm(20.0, 5.0, pl);
        let snr = lb.snr_db(rx);
        assert!((23.0..27.0).contains(&snr), "calibrated SNR {snr}");
    }

    #[test]
    fn six_meter_link_keeps_most_sectors_decodable() {
        // At the conference-room distance a sector 15 dB below the peak
        // still sits far above the −5 dB decode threshold.
        let lb = LinkBudget::default();
        let pl = lb.path_loss_db(6.0);
        let rx = lb.rx_power_dbm(20.0 - 15.0, 5.0, pl);
        assert!(lb.snr_db(rx) > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive distance")]
    fn zero_distance_panics() {
        LinkBudget::default().path_loss_db(0.0);
    }
}
