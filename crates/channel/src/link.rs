//! The composite link: two devices, an environment, a measurement chain.
//!
//! [`Link::probe`] is the physical core of every experiment: given the
//! transmit sector and the receive excitation, it accumulates the received
//! power over all environment rays (non-coherent power sum — SSW frames are
//! short control-PHY bursts, so we do not model phase-coherent multipath
//! combining) and pushes the result through the firmware measurement model.
//!
//! [`Link::sweep`] produces one full sector sweep transcript: for each
//! requested transmit sector, the reading the responder's firmware would
//! put into its ring buffer.

use crate::environment::Environment;
use crate::linkbudget::LinkBudget;
use crate::measurement::{Measurement, MeasurementModel};
use crate::orientation::Orientation;
use geom::db::{db_to_linear, linear_to_db};
use rand::Rng;
use serde::{Deserialize, Serialize};
use talon_array::{Codebook, PhasedArray, SectorId, WeightVector};

/// One physical device: its antenna, its predefined codebook and how it is
/// currently mounted.
#[derive(Debug, Clone)]
pub struct Device {
    /// The phased array with frozen imperfections.
    pub array: PhasedArray,
    /// The firmware's predefined sectors.
    pub codebook: Codebook,
    /// Current mounting orientation (mutated by the rotation head).
    pub orientation: Orientation,
}

impl Device {
    /// Builds a Talon-like device with its codebook, from a device seed.
    pub fn talon(device_seed: u64) -> Self {
        let array = PhasedArray::talon(device_seed);
        let codebook = Codebook::talon(&array, device_seed);
        Device {
            array,
            codebook,
            orientation: Orientation::NEUTRAL,
        }
    }

    /// Gain of an excitation towards a world-coordinate direction, taking
    /// the device orientation into account.
    pub fn gain_towards_world(&self, weights: &WeightVector, world: &geom::Direction) -> f64 {
        let dev = self.orientation.world_to_device(world);
        self.array.gain_dbi(weights, &dev)
    }
}

/// The reading for one probed sector within a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepReading {
    /// Which transmit sector was probed.
    pub sector: SectorId,
    /// What the firmware reported (None: frame missed / report dropped).
    pub measurement: Option<Measurement>,
}

/// A directional link between an initiator (transmitter of SSW frames) and
/// a responder (receiver), through an environment.
#[derive(Debug, Clone)]
pub struct Link {
    /// Static link-budget parameters.
    pub budget: LinkBudget,
    /// The propagation environment.
    pub environment: Environment,
    /// The firmware measurement chain at the receiver.
    pub model: MeasurementModel,
}

impl Link {
    /// Creates a link with default budget and measurement model.
    pub fn new(environment: Environment) -> Self {
        Link {
            budget: LinkBudget::default(),
            environment,
            model: MeasurementModel::default(),
        }
    }

    /// True received power in dBm at `rx` when `tx` transmits with
    /// `tx_weights` and `rx` listens with `rx_weights`.
    pub fn rx_power_dbm(
        &self,
        tx: &Device,
        tx_weights: &WeightVector,
        rx: &Device,
        rx_weights: &WeightVector,
    ) -> f64 {
        let mut total_mw = 0.0;
        for ray in &self.environment.rays {
            let g_tx = tx.gain_towards_world(tx_weights, &ray.depart_world);
            let g_rx = rx.gain_towards_world(rx_weights, &ray.arrive_world);
            let p = self
                .budget
                .rx_power_dbm(g_tx, g_rx, ray.total_loss_db(&self.budget));
            total_mw += db_to_linear(p);
        }
        if total_mw <= 0.0 {
            -200.0
        } else {
            linear_to_db(total_mw)
        }
    }

    /// True SNR in dB for a given sector pair (no measurement noise).
    pub fn true_snr_db(
        &self,
        tx: &Device,
        tx_sector: SectorId,
        rx: &Device,
        rx_weights: &WeightVector,
    ) -> f64 {
        let tx_weights = &tx
            .codebook
            .get(tx_sector)
            .expect("transmit sector must exist in the codebook")
            .weights;
        let p = self.rx_power_dbm(tx, tx_weights, rx, rx_weights);
        self.budget.snr_db(p)
    }

    /// Simulates the reception of one SSW probe frame sent on `tx_sector`
    /// and received with the responder's quasi-omni pattern.
    pub fn probe<R: Rng>(
        &self,
        rng: &mut R,
        tx: &Device,
        tx_sector: SectorId,
        rx: &Device,
    ) -> Option<Measurement> {
        let rx_weights = &rx.codebook.rx_sector().weights;
        let tx_weights = &tx
            .codebook
            .get(tx_sector)
            .expect("transmit sector must exist in the codebook")
            .weights;
        let p = self.rx_power_dbm(tx, tx_weights, rx, rx_weights);
        let snr = self.budget.snr_db(p);
        self.model.report(rng, snr, p)
    }

    /// Simulates one sector sweep over `sectors`, in order, producing the
    /// readings the responder firmware would collect.
    pub fn sweep<R: Rng>(
        &self,
        rng: &mut R,
        tx: &Device,
        sectors: &[SectorId],
        rx: &Device,
    ) -> Vec<SweepReading> {
        sectors
            .iter()
            .map(|&s| SweepReading {
                sector: s,
                measurement: self.probe(rng, tx, s, rx),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;
    use geom::Direction;

    fn setup() -> (Link, Device, Device) {
        let link = Link::new(Environment::anechoic(3.0));
        let tx = Device::talon(1);
        let rx = Device::talon(2);
        (link, tx, rx)
    }

    #[test]
    fn facing_devices_have_usable_snr_on_strong_sector() {
        let (link, tx, rx) = setup();
        let rxw = rx.codebook.rx_sector().weights.clone();
        let snr = link.true_snr_db(&tx, SectorId(63), &rx, &rxw);
        assert!(snr > 5.0, "broadside sector over 3 m: {snr} dB");
    }

    #[test]
    fn rotating_the_tx_away_reduces_snr() {
        let (link, mut tx, rx) = setup();
        let rxw = rx.codebook.rx_sector().weights.clone();
        let facing = link.true_snr_db(&tx, SectorId(63), &rx, &rxw);
        tx.orientation = Orientation::new(50.0, 0.0);
        let rotated = link.true_snr_db(&tx, SectorId(63), &rx, &rxw);
        assert!(
            facing > rotated + 5.0,
            "facing {facing} vs rotated {rotated}"
        );
    }

    #[test]
    fn rotation_makes_a_matching_steered_sector_best() {
        // When the TX is rotated by -40°, a sector steered to device azimuth
        // +40° should now beat the broadside sector.
        let (link, mut tx, rx) = setup();
        let rxw = rx.codebook.rx_sector().weights.clone();
        tx.orientation = Orientation::new(-40.0, 0.0);
        let broadside = link.true_snr_db(&tx, SectorId(63), &rx, &rxw);
        // Find the strongest regular sector.
        let best = tx
            .codebook
            .sweep_order()
            .iter()
            .map(|&s| link.true_snr_db(&tx, s, &rx, &rxw))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best > broadside + 3.0,
            "best {best} vs broadside {broadside}"
        );
    }

    #[test]
    fn probe_reports_track_true_snr() {
        let (link, tx, rx) = setup();
        let rxw = rx.codebook.rx_sector().weights.clone();
        let true_snr = link.true_snr_db(&tx, SectorId(63), &rx, &rxw);
        let mut rng = sub_rng(7, "probe");
        let mut readings = Vec::new();
        for _ in 0..200 {
            if let Some(m) = link.probe(&mut rng, &tx, SectorId(63), &rx) {
                readings.push(m.snr_db);
            }
        }
        assert!(readings.len() > 150);
        let mean = geom::stats::mean(&readings).unwrap();
        let expected = (true_snr - link.model.report_offset_db).clamp(-7.0, 12.0);
        assert!(
            (mean - expected).abs() < 1.5,
            "mean report {mean} vs expected {expected} (true {true_snr})"
        );
    }

    #[test]
    fn sweep_covers_requested_sectors_in_order() {
        let (link, tx, rx) = setup();
        let mut rng = sub_rng(8, "sweep");
        let order = tx.codebook.sweep_order();
        let sweep = link.sweep(&mut rng, &tx, &order, &rx);
        assert_eq!(sweep.len(), 34);
        for (r, &s) in sweep.iter().zip(order.iter()) {
            assert_eq!(r.sector, s);
        }
    }

    #[test]
    fn multipath_environment_raises_offboresight_power() {
        // In the conference room, a sector pointed at the whiteboard path
        // receives noticeably more than in an anechoic room.
        let tx = Device::talon(3);
        let rx = Device::talon(4);
        let rxw = rx.codebook.rx_sector().weights.clone();
        let conf = Link::new(Environment::conference_room());
        let anech = Link::new(Environment::anechoic(6.0));
        // Steer at the strongest reflection's departure azimuth (~-26.6°).
        let refl_dir = conf.environment.rays[1].depart_world;
        let w = tx.array.quantize(
            &tx.array
                .steering_weights(&Direction::new(refl_dir.az_deg, refl_dir.el_deg)),
        );
        let p_conf = conf.rx_power_dbm(&tx, &w, &rx, &rxw);
        let p_anech = anech.rx_power_dbm(&tx, &w, &rx, &rxw);
        assert!(
            p_conf > p_anech + 2.0,
            "conference {p_conf} vs anechoic {p_anech}"
        );
    }

    #[test]
    #[should_panic(expected = "must exist in the codebook")]
    fn probing_unknown_sector_panics() {
        let (link, tx, rx) = setup();
        let mut rng = sub_rng(9, "bad");
        link.probe(&mut rng, &tx, SectorId(40), &rx);
    }
}
