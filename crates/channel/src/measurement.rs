//! The low-cost firmware measurement process.
//!
//! §5 of the paper describes what the firmware actually delivers: SNR
//! readings with "severe outliers", channels with low gain producing "high
//! signal strength deviations", occasional sweeps where "the firmware does
//! not report any measurements at all", and RSSI readings whose fluctuations
//! are *not* observable at the same time as the SNR's (they are acquired
//! differently) while still being correlated on average.
//!
//! [`MeasurementModel`] turns a true per-frame SNR into what the firmware
//! reports:
//!
//! 1. small-scale fading jitter (log-normal, per frame);
//! 2. frame decode: a logistic success probability in the true SNR — frames
//!    in low-gain directions are simply missing;
//! 3. independent report noise on SNR and RSSI, plus heavy-tailed outliers
//!    whose probability grows as the SNR approaches the decode threshold;
//! 4. quantization and clamping per [`geom::db::DbQuantizer`].

use geom::db::DbQuantizer;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One reported measurement of a received SSW frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Reported SNR in dB (quantized, clamped).
    pub snr_db: f64,
    /// Reported RSSI in dBm (quantized, clamped).
    pub rssi_dbm: f64,
}

/// Parameters of the measurement process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementModel {
    /// Std-dev of per-frame fading on the true SNR, dB.
    pub fading_std_db: f64,
    /// SNR at which half the frames decode, dB.
    pub decode_snr_db: f64,
    /// Logistic width of the decode curve, dB.
    pub decode_width_db: f64,
    /// Probability that a decoded frame's measurement is dropped anyway
    /// (firmware misses the report).
    pub report_drop_prob: f64,
    /// Std-dev of the SNR report noise, dB.
    pub snr_noise_std_db: f64,
    /// Std-dev of the RSSI report noise, dB.
    pub rssi_noise_std_db: f64,
    /// Offset between physical SNR and the firmware's internal SNR report
    /// scale, dB: `report = physical − offset`, then quantize/clamp. 12 dB
    /// pins the best 3 m chamber sectors at the 12 dB clamp (as in the
    /// paper's Fig. 5, where the strongest lobes saturate the scale) while
    /// keeping side-lobe structure above the −7 dB floor.
    pub report_offset_db: f64,
    /// Baseline probability of an SNR outlier at high SNR.
    pub outlier_prob_floor: f64,
    /// Additional outlier probability reached near the decode threshold.
    pub outlier_prob_low_snr: f64,
    /// Magnitude scale of outliers, dB (uniform in ±[2, 2+scale]).
    pub outlier_scale_db: f64,
    /// SNR quantizer (firmware report format).
    pub snr_quant: DbQuantizer,
    /// RSSI quantizer (firmware report format).
    pub rssi_quant: DbQuantizer,
}

impl Default for MeasurementModel {
    fn default() -> Self {
        MeasurementModel {
            fading_std_db: 0.8,
            decode_snr_db: -5.0,
            decode_width_db: 1.5,
            report_drop_prob: 0.02,
            snr_noise_std_db: 0.6,
            rssi_noise_std_db: 0.9,
            report_offset_db: 12.0,
            outlier_prob_floor: 0.01,
            outlier_prob_low_snr: 0.12,
            outlier_scale_db: 6.0,
            snr_quant: DbQuantizer::TALON_SNR,
            rssi_quant: DbQuantizer::TALON_RSSI,
        }
    }
}

impl MeasurementModel {
    /// An idealized reporting chain (no noise, no misses, no quantization
    /// artifacts beyond the format) for ablation experiments.
    pub fn ideal() -> Self {
        MeasurementModel {
            fading_std_db: 0.0,
            decode_snr_db: -1e6,
            decode_width_db: 1.0,
            report_drop_prob: 0.0,
            snr_noise_std_db: 0.0,
            rssi_noise_std_db: 0.0,
            report_offset_db: 0.0,
            outlier_prob_floor: 0.0,
            outlier_prob_low_snr: 0.0,
            outlier_scale_db: 0.0,
            ..MeasurementModel::default()
        }
    }

    /// Probability that a frame at `true_snr_db` decodes.
    pub fn decode_prob(&self, true_snr_db: f64) -> f64 {
        let x = (true_snr_db - self.decode_snr_db) / self.decode_width_db;
        1.0 / (1.0 + (-x).exp())
    }

    /// Probability of an outlier report at `true_snr_db`: floor at high
    /// SNR, rising towards the decode threshold.
    pub fn outlier_prob(&self, true_snr_db: f64) -> f64 {
        let x = (true_snr_db - self.decode_snr_db) / (2.0 * self.decode_width_db);
        let low = 1.0 / (1.0 + x.max(0.0));
        (self.outlier_prob_floor + self.outlier_prob_low_snr * low).min(1.0)
    }

    /// Simulates the firmware report for one received SSW frame.
    ///
    /// `true_snr_db` / `true_rssi_dbm` are the physical values from the
    /// link budget. Returns `None` when the frame does not decode or the
    /// firmware drops the report.
    pub fn report<R: Rng>(
        &self,
        rng: &mut R,
        true_snr_db: f64,
        true_rssi_dbm: f64,
    ) -> Option<Measurement> {
        // Per-frame fading affects decode and both reports coherently.
        let fade = gaussian(rng) * self.fading_std_db;
        let snr = true_snr_db + fade;
        if rng.gen::<f64>() >= self.decode_prob(snr) {
            return None;
        }
        if rng.gen::<f64>() < self.report_drop_prob {
            return None;
        }
        // Independent report noise on the two values (§5: fluctuations "are
        // not observable in both values at the same time").
        let mut snr_rep = snr - self.report_offset_db + gaussian(rng) * self.snr_noise_std_db;
        let mut rssi_rep = true_rssi_dbm + fade + gaussian(rng) * self.rssi_noise_std_db;
        // Heavy-tailed outliers, independently per value.
        let p_out = self.outlier_prob(snr);
        if rng.gen::<f64>() < p_out {
            snr_rep += outlier(rng, self.outlier_scale_db);
        }
        if rng.gen::<f64>() < p_out {
            rssi_rep += outlier(rng, self.outlier_scale_db);
        }
        Some(Measurement {
            snr_db: self.snr_quant.value(self.snr_quant.quantize(snr_rep)),
            rssi_dbm: self.rssi_quant.value(self.rssi_quant.quantize(rssi_rep)),
        })
    }
}

/// Box–Muller standard normal draw.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A two-sided heavy outlier: ±(2 .. 2+scale) dB, uniform.
fn outlier<R: Rng>(rng: &mut R, scale_db: f64) -> f64 {
    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    sign * (2.0 + rng.gen::<f64>() * scale_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::rng::sub_rng;

    #[test]
    fn decode_prob_is_monotone() {
        let m = MeasurementModel::default();
        assert!(m.decode_prob(-20.0) < 0.01);
        assert!((m.decode_prob(m.decode_snr_db) - 0.5).abs() < 1e-12);
        assert!(m.decode_prob(10.0) > 0.999);
    }

    #[test]
    fn outlier_prob_rises_at_low_snr() {
        let m = MeasurementModel::default();
        assert!(m.outlier_prob(-5.0) > m.outlier_prob(10.0));
        assert!(m.outlier_prob(10.0) >= m.outlier_prob_floor);
        assert!(m.outlier_prob(-30.0) <= 1.0);
    }

    #[test]
    fn high_snr_frames_mostly_report_close_to_truth() {
        let m = MeasurementModel::default();
        let mut rng = sub_rng(1, "meas");
        let mut reported = 0;
        let mut close = 0;
        // Physical 20 dB → report ≈ 20 − 12 = 8 dB.
        for _ in 0..2000 {
            if let Some(r) = m.report(&mut rng, 20.0, -60.0) {
                reported += 1;
                if (r.snr_db - 8.0).abs() < 3.0 {
                    close += 1;
                }
            }
        }
        assert!(reported > 1900, "reported {reported}");
        assert!(close as f64 / reported as f64 > 0.9);
    }

    #[test]
    fn low_snr_frames_often_go_missing() {
        let m = MeasurementModel::default();
        let mut rng = sub_rng(2, "meas");
        let reported = (0..2000)
            .filter(|_| m.report(&mut rng, -6.5, -75.0).is_some())
            .count();
        // decode_prob(-6.5) ≈ 0.27 before fading.
        assert!(
            (200..800).contains(&reported),
            "low-SNR report count {reported}"
        );
    }

    #[test]
    fn reports_are_quantized_and_clamped() {
        let m = MeasurementModel::default();
        let mut rng = sub_rng(3, "meas");
        for _ in 0..500 {
            if let Some(r) = m.report(&mut rng, 30.0, -25.0) {
                assert!(r.snr_db <= 12.0, "SNR clamp violated: {}", r.snr_db);
                let steps = r.snr_db / 0.25;
                assert!((steps - steps.round()).abs() < 1e-9, "quantized SNR");
                let rsteps = r.rssi_dbm / 1.0;
                assert!((rsteps - rsteps.round()).abs() < 1e-9, "quantized RSSI");
            }
        }
    }

    #[test]
    fn ideal_model_is_transparent() {
        let m = MeasurementModel::ideal();
        let mut rng = sub_rng(4, "meas");
        let r = m.report(&mut rng, 7.13, -61.7).unwrap();
        assert!((r.snr_db - 7.25).abs() < 1e-9, "only quantization remains");
        assert!((r.rssi_dbm + 62.0).abs() < 1e-9);
    }

    #[test]
    fn snr_and_rssi_noise_are_independent() {
        // With SNR noise disabled but RSSI noise huge, SNR reports stay
        // tight while RSSI reports scatter — the §5 behaviour.
        let m = MeasurementModel {
            snr_noise_std_db: 0.0,
            rssi_noise_std_db: 5.0,
            fading_std_db: 0.0,
            outlier_prob_floor: 0.0,
            outlier_prob_low_snr: 0.0,
            ..MeasurementModel::default()
        };
        let mut rng = sub_rng(5, "meas");
        let mut snrs = Vec::new();
        let mut rssis = Vec::new();
        for _ in 0..500 {
            if let Some(r) = m.report(&mut rng, 20.0, -60.0) {
                snrs.push(r.snr_db);
                rssis.push(r.rssi_dbm);
            }
        }
        let snr_sd = geom::stats::std_dev(&snrs).unwrap();
        let rssi_sd = geom::stats::std_dev(&rssis).unwrap();
        assert!(snr_sd < 0.2, "snr sd {snr_sd}");
        assert!(rssi_sd > 3.0, "rssi sd {rssi_sd}");
    }
}
