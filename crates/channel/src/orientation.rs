//! Device mounting and rotation state.
//!
//! The measurement campaigns rotate the device under test on a stepper head
//! (azimuth) and manually tilt it (elevation, §4.5). Propagation rays are
//! fixed in *world* coordinates; the antenna evaluates gains in *device*
//! coordinates. [`Orientation`] performs that conversion.
//!
//! The tilt conversion is the small-angle decomposition `az' = az − yaw`,
//! `el' = el − tilt`, exact for pure yaw and accurate to well under a degree
//! for the tilts the paper uses (≤ 32.4°) at the frontal azimuths where its
//! evaluation happens. The paper itself reports that manual tilting did not
//! achieve sub-degree precision (§6.2), so this approximation is below the
//! setup's own error floor.

use geom::sphere::Direction;
use serde::{Deserialize, Serialize};

/// Yaw/tilt of a device in world coordinates, degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Orientation {
    /// Rotation about the vertical axis (positive turns the broadside
    /// towards world azimuth +yaw).
    pub yaw_deg: f64,
    /// Tilt of the rotation head (positive tilts the broadside upwards).
    pub tilt_deg: f64,
}

impl Orientation {
    /// The neutral mounting: broadside facing world azimuth 0, no tilt.
    pub const NEUTRAL: Orientation = Orientation {
        yaw_deg: 0.0,
        tilt_deg: 0.0,
    };

    /// Creates an orientation.
    pub fn new(yaw_deg: f64, tilt_deg: f64) -> Self {
        Orientation { yaw_deg, tilt_deg }
    }

    /// Converts a world-coordinate direction into device coordinates.
    pub fn world_to_device(&self, world: &Direction) -> Direction {
        Direction::new(world.az_deg - self.yaw_deg, world.el_deg - self.tilt_deg)
    }

    /// Converts a device-coordinate direction into world coordinates.
    pub fn device_to_world(&self, device: &Direction) -> Direction {
        Direction::new(device.az_deg + self.yaw_deg, device.el_deg + self.tilt_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_is_identity() {
        let d = Direction::new(33.0, 12.0);
        let o = Orientation::NEUTRAL;
        assert_eq!(o.world_to_device(&d), d);
        assert_eq!(o.device_to_world(&d), d);
    }

    #[test]
    fn yaw_shifts_azimuth() {
        let o = Orientation::new(30.0, 0.0);
        let dev = o.world_to_device(&Direction::new(30.0, 0.0));
        assert_eq!(dev.az_deg, 0.0);
        // A device yawed +30° sees world azimuth 0 at device azimuth −30.
        let dev = o.world_to_device(&Direction::new(0.0, 0.0));
        assert_eq!(dev.az_deg, -30.0);
    }

    #[test]
    fn tilt_shifts_elevation() {
        let o = Orientation::new(0.0, 10.0);
        let dev = o.world_to_device(&Direction::new(0.0, 10.0));
        assert_eq!(dev.el_deg, 0.0);
    }

    #[test]
    fn roundtrip_within_range() {
        let o = Orientation::new(-42.0, 14.0);
        let d = Direction::new(17.0, 8.0);
        let back = o.device_to_world(&o.world_to_device(&d));
        assert!((back.az_deg - d.az_deg).abs() < 1e-12);
        assert!((back.el_deg - d.el_deg).abs() < 1e-12);
    }

    #[test]
    fn azimuth_wraps_through_180() {
        let o = Orientation::new(170.0, 0.0);
        let dev = o.world_to_device(&Direction::new(-170.0, 0.0));
        assert_eq!(dev.az_deg, 20.0);
    }
}
