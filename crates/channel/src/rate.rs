//! 802.11ad single-carrier PHY rates and the data-plane SNR model.
//!
//! Maps a probe-frame SNR to the modulation-and-coding scheme (MCS) the
//! data plane can sustain, and on to TCP goodput with the MAC efficiency
//! observed on Talon hardware (iPerf3 reaches ≈ 1/3 of the PHY rate).
//!
//! Control-PHY probe frames enjoy a large spreading gain that SC-PHY data
//! frames lack, while data frames gain a beamformed receive sector instead
//! of the probes' quasi-omni pattern; [`DataLinkModel::data_boost_db`] is
//! the small net difference between the two budgets.

use serde::{Deserialize, Serialize};

/// One 802.11ad single-carrier MCS entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McsEntry {
    /// MCS index (1–12; MCS 0 is the control PHY).
    pub index: u8,
    /// PHY data rate in Mbps.
    pub phy_mbps: f64,
    /// Minimum data SNR in dB.
    pub min_snr_db: f64,
}

/// The 802.11ad SC-PHY rate table with receiver-grade SNR thresholds.
pub const MCS_TABLE: [McsEntry; 12] = [
    McsEntry {
        index: 1,
        phy_mbps: 385.0,
        min_snr_db: 2.0,
    },
    McsEntry {
        index: 2,
        phy_mbps: 770.0,
        min_snr_db: 4.0,
    },
    McsEntry {
        index: 3,
        phy_mbps: 962.5,
        min_snr_db: 5.5,
    },
    McsEntry {
        index: 4,
        phy_mbps: 1155.0,
        min_snr_db: 6.5,
    },
    McsEntry {
        index: 5,
        phy_mbps: 1251.25,
        min_snr_db: 7.5,
    },
    McsEntry {
        index: 6,
        phy_mbps: 1540.0,
        min_snr_db: 9.0,
    },
    McsEntry {
        index: 7,
        phy_mbps: 1925.0,
        min_snr_db: 11.0,
    },
    McsEntry {
        index: 8,
        phy_mbps: 2310.0,
        min_snr_db: 12.5,
    },
    McsEntry {
        index: 9,
        phy_mbps: 2502.5,
        min_snr_db: 14.0,
    },
    McsEntry {
        index: 10,
        phy_mbps: 3080.0,
        min_snr_db: 16.5,
    },
    McsEntry {
        index: 11,
        phy_mbps: 3850.0,
        min_snr_db: 18.5,
    },
    McsEntry {
        index: 12,
        phy_mbps: 4620.0,
        min_snr_db: 20.5,
    },
];

/// Data-plane link model relative to probe frames.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DataLinkModel {
    /// Net SNR difference of data frames vs probe frames, dB (beamformed
    /// receive sector minus the probes' control-PHY spreading gain).
    pub data_boost_db: f64,
    /// TCP goodput per PHY bit (Talon hardware measures ≈ 1/3).
    pub tcp_efficiency: f64,
}

impl Default for DataLinkModel {
    fn default() -> Self {
        DataLinkModel {
            data_boost_db: 7.0,
            tcp_efficiency: 1.0 / 3.0,
        }
    }
}

impl DataLinkModel {
    /// Highest MCS supported at a given probe-frame true SNR.
    pub fn mcs_for(&self, probe_snr_db: f64) -> Option<McsEntry> {
        let data_snr = probe_snr_db + self.data_boost_db;
        MCS_TABLE
            .iter()
            .rev()
            .find(|e| data_snr >= e.min_snr_db)
            .copied()
    }

    /// TCP goodput in Gbps at a given probe-frame true SNR.
    pub fn tcp_gbps(&self, probe_snr_db: f64) -> f64 {
        self.mcs_for(probe_snr_db)
            .map(|e| e.phy_mbps * self.tcp_efficiency / 1000.0)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone_in_rate_and_threshold() {
        for w in MCS_TABLE.windows(2) {
            assert!(w[1].phy_mbps > w[0].phy_mbps);
            assert!(w[1].min_snr_db > w[0].min_snr_db);
            assert!(w[1].index == w[0].index + 1);
        }
    }

    #[test]
    fn mapping_covers_the_range() {
        let m = DataLinkModel::default();
        assert_eq!(m.mcs_for(-30.0), None);
        assert_eq!(m.mcs_for(30.0).unwrap().index, 12);
        // First usable MCS just above its threshold.
        let e = m.mcs_for(2.0 - m.data_boost_db + 0.1).unwrap();
        assert_eq!(e.index, 1);
    }

    #[test]
    fn tcp_rate_is_a_third_of_phy() {
        let m = DataLinkModel::default();
        let r = m.tcp_gbps(30.0);
        assert!((r - 4.620 / 3.0).abs() < 1e-12);
        assert_eq!(m.tcp_gbps(-30.0), 0.0);
    }
}
