//! Fig. 7 — angular estimation error vs number of probing sectors.
//!
//! For every recorded sweep and every probe count `M`, a random `M`-sector
//! subset of the recorded measurements feeds the compressive estimator;
//! the azimuth and elevation differences between the estimate and the
//! physical orientation are collected and summarized as the paper's box
//! plots (boxes 50 %, whiskers 99 %, dash median).
//!
//! The Monte Carlo grid (`M` × position × sweep × draw) runs on the
//! [`crate::engine`]: each cell is one work unit with its own
//! index-derived RNG stream. Units feed the GEMM-shaped
//! [`css::BatchEstimator`] in fixed-boundary batches of
//! [`EVAL_BATCH`] links ([`engine::par_map_batched`]); every link
//! occupies its own panel column, so batching never mixes links'
//! arithmetic and the result is bit-identical for any thread count —
//! per precision mode ([`KernelPath`]).

use crate::engine;
use crate::scenario::{random_subset, RecordedDataset};
use chamber::SectorPatterns;
use css::estimator::{CorrelationMode, EstimatorOptions, KernelPath};
use css::{BatchEstimator, BatchScratch};
use geom::rng::sub_rng_indexed;
use geom::stats::BoxStats;
use serde::Serialize;
use talon_channel::SweepReading;

/// Links per batched kernel sweep in the Fig. 7 fan-out. Amortizes the
/// grid walk across enough panel columns to hit the sub-µs regime while
/// keeping per-batch subset buffers small.
pub const EVAL_BATCH: usize = 16;

/// The Fig. 7 series for one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct EstimationErrorResult {
    /// Scenario name.
    pub scenario: String,
    /// One row per probe count.
    pub rows: Vec<EstimationErrorRow>,
}

/// Error statistics at one probe count.
#[derive(Debug, Clone, Serialize)]
pub struct EstimationErrorRow {
    /// Number of probing sectors `M`.
    pub probes: usize,
    /// Azimuth error statistics (degrees).
    pub azimuth: BoxStats,
    /// Elevation error statistics (degrees).
    pub elevation: BoxStats,
}

/// Runs the Fig. 7 analysis on [`engine::default_threads`] threads.
///
/// `m_values` is the x-axis (the paper sweeps 4–34); `draws_per_sweep`
/// controls how many random subsets are sampled from each recorded sweep.
pub fn estimation_error(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    m_values: &[usize],
    draws_per_sweep: usize,
    seed: u64,
) -> EstimationErrorResult {
    estimation_error_par(
        data,
        patterns,
        m_values,
        draws_per_sweep,
        seed,
        engine::default_threads(),
    )
}

/// [`estimation_error`] with an explicit thread count. The result does not
/// depend on `threads`.
pub fn estimation_error_par(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    m_values: &[usize],
    draws_per_sweep: usize,
    seed: u64,
    threads: usize,
) -> EstimationErrorResult {
    estimation_error_batched(
        data,
        patterns,
        m_values,
        draws_per_sweep,
        seed,
        threads,
        KernelPath::F64,
    )
}

/// [`estimation_error_par`] on an explicit kernel precision path.
///
/// Each batch of [`EVAL_BATCH`] consecutive units runs as one
/// [`BatchEstimator`] sweep; batch boundaries are a pure function of the
/// unit count, so the output is bit-identical at any `threads` for every
/// `kernel_path`. Subset draws still come from the per-unit RNG streams
/// (`sub_rng_indexed(seed, "fig7-subsets", unit)`), unchanged from the
/// scalar wiring.
pub fn estimation_error_batched(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    m_values: &[usize],
    draws_per_sweep: usize,
    seed: u64,
    threads: usize,
    kernel_path: KernelPath,
) -> EstimationErrorResult {
    let options = EstimatorOptions {
        kernel_path,
        ..EstimatorOptions::default()
    };
    let estimator = BatchEstimator::new(patterns, CorrelationMode::JointSnrRssi, options);
    // Flatten the recorded sweeps once; each work unit addresses one
    // (m, sweep, draw) cell of the Monte Carlo grid by flat index.
    let sweeps: Vec<_> = data
        .positions
        .iter()
        .flat_map(|pos| pos.sweeps.iter().map(move |sweep| (&pos.truth, sweep)))
        .collect();
    let units_per_m = sweeps.len() * draws_per_sweep;
    let n_units = m_values.len() * units_per_m;
    let errors: Vec<Option<(f64, f64)>> = engine::par_map_batched(
        n_units,
        threads,
        EVAL_BATCH,
        BatchScratch::new,
        |scratch, range| {
            let subsets: Vec<Vec<SweepReading>> = range
                .clone()
                .map(|unit| {
                    let m = m_values[unit / units_per_m];
                    let (_, sweep) = sweeps[(unit % units_per_m) / draws_per_sweep];
                    let mut rng = sub_rng_indexed(seed, "fig7-subsets", unit as u64);
                    random_subset(&mut rng, sweep, m)
                })
                .collect();
            let links: Vec<&[SweepReading]> = subsets.iter().map(Vec::as_slice).collect();
            estimator
                .estimate_batch(scratch, &links)
                .into_iter()
                .zip(range)
                .map(|(est, unit)| {
                    let (truth, _) = sweeps[(unit % units_per_m) / draws_per_sweep];
                    est.map(|e| e.direction.component_error(truth))
                })
                .collect()
        },
    );
    let mut rows = Vec::with_capacity(m_values.len());
    for (mi, &m) in m_values.iter().enumerate() {
        let cell = &errors[mi * units_per_m..(mi + 1) * units_per_m];
        let az_errors: Vec<f64> = cell.iter().flatten().map(|&(az, _)| az).collect();
        let el_errors: Vec<f64> = cell.iter().flatten().map(|&(_, el)| el).collect();
        let azimuth = BoxStats::from_samples(&az_errors)
            .expect("at least one successful estimate per probe count");
        let elevation = BoxStats::from_samples(&el_errors).expect("elevation errors present");
        rows.push(EstimationErrorRow {
            probes: m,
            azimuth,
            elevation,
        });
    }
    EstimationErrorResult {
        scenario: data.scenario.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EvalScenario, Fidelity};

    fn run(scduring: fn(Fidelity, u64) -> EvalScenario, seed: u64) -> EstimationErrorResult {
        let mut s = scduring(Fidelity::Fast, seed);
        let data = s.record(seed);
        estimation_error(&data, &s.patterns, &[6, 14, 30], 3, seed)
    }

    #[test]
    fn error_decreases_with_more_probes_in_lab() {
        let res = run(EvalScenario::lab, 101);
        assert_eq!(res.rows.len(), 3);
        let med_6 = res.rows[0].azimuth.median;
        let med_30 = res.rows[2].azimuth.median;
        assert!(
            med_30 <= med_6 + 1e-9,
            "azimuth error shrinks: {med_6}° @6 vs {med_30}° @30"
        );
    }

    #[test]
    fn many_probes_give_small_azimuth_error() {
        let res = run(EvalScenario::lab, 102);
        let full = res.rows.last().unwrap();
        assert!(
            full.azimuth.median < 12.0,
            "median azimuth error with 30 probes: {}",
            full.azimuth.median
        );
    }

    #[test]
    fn conference_room_errors_are_finite_and_ordered() {
        let res = run(EvalScenario::conference_room, 103);
        for row in &res.rows {
            assert!(row.azimuth.p005 <= row.azimuth.median);
            assert!(row.azimuth.median <= row.azimuth.p995);
            assert!(row.azimuth.p995 <= 180.0);
            assert!(row.elevation.p995 <= 90.0);
        }
    }

    #[test]
    fn elevation_error_bounded_by_grid_when_untilted() {
        // The conference-room evaluation keeps elevation at 0; estimates on
        // the measured grid can wander but errors stay within the pattern
        // grid's elevation extent.
        let res = run(EvalScenario::conference_room, 104);
        for row in &res.rows {
            assert!(
                row.elevation.p995 <= 32.4,
                "elevation error {} within measured extent",
                row.elevation.p995
            );
        }
    }
}
