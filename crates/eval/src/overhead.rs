//! Fig. 10 — training time vs number of probing sectors.
//!
//! The analytic model is `t(M) = 2·M·18.0 µs + 49.1 µs` (§4.1, §6.4); this
//! module evaluates it over the probe counts and cross-checks it against
//! the event-driven SLS simulation, asserting the paper's anchor points:
//! 1.27 ms for the stock 34-probe sweep, 0.55 ms at 14 probes, speedup 2.3.

use geom::rng::sub_rng;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy, SlsRunner};
use mac80211ad::timing::mutual_training_time;
use serde::Serialize;
use talon_array::SectorId;
use talon_channel::{Device, Environment, Link, SweepReading};

/// The Fig. 10 series.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadResult {
    /// `(probes, training time ms)` from the timing model.
    pub model: Vec<(usize, f64)>,
    /// `(probes, training time ms)` measured on the simulated protocol.
    pub simulated: Vec<(usize, f64)>,
    /// Stock sweep time (34 probes), ms.
    pub ssw_ms: f64,
    /// CSS time at the paper's operating point (14 probes), ms.
    pub css14_ms: f64,
}

impl OverheadResult {
    /// The headline speedup factor (paper: 2.3).
    pub fn speedup(&self) -> f64 {
        self.ssw_ms / self.css14_ms
    }
}

/// A policy that probes the first `m` sectors (the timing does not depend
/// on *which* sectors are probed).
struct FixedCount(usize);

impl FeedbackPolicy for FixedCount {
    fn probe_sectors(&mut self, full_sweep: &[SectorId]) -> Vec<SectorId> {
        full_sweep.iter().copied().take(self.0).collect()
    }
    fn select(&mut self, readings: &[SweepReading]) -> Option<SectorId> {
        MaxSnrPolicy.select(readings)
    }
}

/// Runs the Fig. 10 analysis.
pub fn training_time(m_values: &[usize], seed: u64) -> OverheadResult {
    let model: Vec<(usize, f64)> = m_values
        .iter()
        .map(|&m| (m, mutual_training_time(m).as_ms()))
        .collect();

    // Cross-check against the protocol simulation.
    let link = Link::new(Environment::anechoic(3.0));
    let initiator = Device::talon(seed);
    let responder = Device::talon(seed.wrapping_add(1));
    let runner = SlsRunner::new(&link, &initiator, &responder);
    let mut rng = sub_rng(seed, "fig10");
    let simulated: Vec<(usize, f64)> = m_values
        .iter()
        .map(|&m| {
            let out = runner.run(&mut rng, &mut FixedCount(m), &mut FixedCount(m));
            (m, out.duration.as_ms())
        })
        .collect();

    OverheadResult {
        model,
        simulated,
        ssw_ms: mutual_training_time(34).as_ms(),
        css14_ms: mutual_training_time(14).as_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_simulation_agree() {
        let res = training_time(&[6, 14, 22, 34], 1);
        for ((m1, t_model), (m2, t_sim)) in res.model.iter().zip(&res.simulated) {
            assert_eq!(m1, m2);
            assert!(
                (t_model - t_sim).abs() < 1e-9,
                "model {t_model} ms vs simulated {t_sim} ms at {m1} probes"
            );
        }
    }

    #[test]
    fn paper_anchor_points() {
        let res = training_time(&[14, 34], 2);
        assert!((res.ssw_ms - 1.2731).abs() < 1e-6);
        assert!((res.css14_ms - 0.5531).abs() < 1e-6);
        assert!(
            (res.speedup() - 2.3).abs() < 0.02,
            "speedup {}",
            res.speedup()
        );
    }

    #[test]
    fn time_is_linear_in_probes() {
        let res = training_time(&[10, 20, 30], 3);
        let t10 = res.model[0].1;
        let t20 = res.model[1].1;
        let t30 = res.model[2].1;
        assert!(((t20 - t10) - (t30 - t20)).abs() < 1e-9, "equal increments");
    }
}
