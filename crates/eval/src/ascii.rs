//! Plain-text rendering of experiment results.
//!
//! Every reproduction binary prints its table or figure series through
//! these helpers, so EXPERIMENTS.md can quote them verbatim.

/// Renders a table: header row plus data rows, columns padded to width.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders a horizontal bar chart line: label, bar, value.
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64)
            .round()
            .clamp(0.0, width as f64) as usize
    } else {
        0
    };
    format!(
        "{label:>16} |{}{}| {value:.3}",
        "#".repeat(filled),
        " ".repeat(width - filled)
    )
}

/// Renders a small heatmap (row-major values) with a coarse character ramp.
pub fn heatmap(values: &[f64], cols: usize, lo: f64, hi: f64) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    assert!(
        cols > 0 && values.len().is_multiple_of(cols),
        "rectangular input"
    );
    let mut out = String::new();
    for row in values.chunks(cols) {
        for &v in row {
            let t = if hi > lo {
                ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let idx = (t * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = table(
            &["m", "value"],
            &[
                vec!["4".into(), "1.5".into()],
                vec!["14".into(), "0.55".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[1].starts_with('-'));
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn bar_scales_with_value() {
        let full = bar("x", 10.0, 10.0, 20);
        let half = bar("x", 5.0, 10.0, 20);
        assert_eq!(full.matches('#').count(), 20);
        assert_eq!(half.matches('#').count(), 10);
        let zero = bar("x", 0.0, 0.0, 20);
        assert_eq!(zero.matches('#').count(), 0);
    }

    #[test]
    fn heatmap_has_grid_shape() {
        let h = heatmap(&[0.0, 1.0, 0.5, 0.25], 2, 0.0, 1.0);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        assert_eq!(lines[0].chars().next(), Some(' '));
        assert_eq!(lines[0].chars().nth(1), Some('@'));
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_heatmap_panics() {
        heatmap(&[0.0, 1.0, 0.5], 2, 0.0, 1.0);
    }
}
