//! Evaluation scenarios and sweep recording (§6.1).
//!
//! "We use the same setup as for obtaining the antenna patterns … but take
//! measurements in a lab environment and a conference room. In the lab
//! environment, we place the two devices three meters apart, in the
//! conference room six meters apart. … For both scenarios, we set the range
//! of our rotation head to ±60°. In the lab environment, we tilt the
//! rotation head in steps of 2° from 0° to 30° and use an azimuth
//! resolution of 2.25°. In the conference room, we do not change the
//! elevation angle, but increase the resolution of azimuth angles to 1.3°."
//!
//! [`EvalScenario::record`] walks those orientation grids, runs full
//! 34-sector sweeps at each position and records reported SNR/RSSI plus the
//! noise-free true SNR of every sector (the analysis' "optimal" reference).

use chamber::{Campaign, CampaignConfig, RotationHead, SectorPatterns};
use geom::rng::sub_rng;
use geom::sphere::{Direction, GridSpec, SphericalGrid};
use rand::Rng;
use talon_array::SectorId;
use talon_channel::{Device, Environment, Link, SweepReading};

/// How much work an experiment spends: tests use `Fast`, the reproduction
/// binaries `Paper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Coarse grids, few repetitions — seconds, for tests.
    Fast,
    /// The paper's grids and repetition counts — minutes.
    Paper,
}

/// One evaluation scenario: environment, devices, measured patterns.
pub struct EvalScenario {
    /// Scenario name ("lab" / "conference-room").
    pub name: String,
    /// The propagation link.
    pub link: Link,
    /// The rotating device under test (the transmitter whose sector is
    /// selected).
    pub dut: Device,
    /// The fixed peer.
    pub fixed: Device,
    /// Anechoic-chamber-measured patterns of the DUT (the CSS input).
    pub patterns: SectorPatterns,
    /// Orientation grid evaluated (device-coordinate truth directions).
    pub eval_grid: SphericalGrid,
    /// Full sweeps recorded per orientation.
    pub sweeps_per_position: usize,
}

impl EvalScenario {
    /// The §6.1 lab environment: 3 m, az ±60° at 2.25°, el 0°–30° at 2°.
    pub fn lab(fidelity: Fidelity, seed: u64) -> Self {
        let eval_grid = match fidelity {
            Fidelity::Paper => SphericalGrid::new(
                GridSpec::new(-60.0, 60.0, 2.25),
                GridSpec::new(0.0, 30.0, 2.0),
            ),
            Fidelity::Fast => SphericalGrid::new(
                GridSpec::new(-60.0, 60.0, 15.0),
                GridSpec::new(0.0, 30.0, 10.0),
            ),
        };
        Self::build("lab", Environment::lab(), eval_grid, fidelity, seed)
    }

    /// The §6.1 conference room: 6 m, az ±60° at 1.3°, elevation fixed.
    pub fn conference_room(fidelity: Fidelity, seed: u64) -> Self {
        let eval_grid = match fidelity {
            Fidelity::Paper => {
                SphericalGrid::new(GridSpec::new(-60.0, 60.0, 1.3), GridSpec::fixed(0.0))
            }
            Fidelity::Fast => {
                SphericalGrid::new(GridSpec::new(-60.0, 60.0, 10.0), GridSpec::fixed(0.0))
            }
        };
        Self::build(
            "conference-room",
            Environment::conference_room(),
            eval_grid,
            fidelity,
            seed,
        )
    }

    fn build(
        name: &str,
        environment: Environment,
        eval_grid: SphericalGrid,
        fidelity: Fidelity,
        seed: u64,
    ) -> Self {
        let mut dut = Device::talon(seed);
        let fixed = Device::talon(seed.wrapping_add(1));
        // Patterns are measured once in the anechoic chamber (§4), not in
        // the evaluation environment.
        let campaign_cfg = match fidelity {
            Fidelity::Paper => CampaignConfig::paper_3d_scan(),
            Fidelity::Fast => CampaignConfig::coarse(),
        };
        let chamber_link = Link::new(Environment::anechoic(3.0));
        let mut campaign = Campaign::new(campaign_cfg, seed);
        let mut rng = sub_rng(seed, "scenario-campaign");
        let patterns = campaign.measure_tx_patterns(&mut rng, &chamber_link, &mut dut, &fixed);
        let sweeps_per_position = match fidelity {
            Fidelity::Paper => 20,
            Fidelity::Fast => 4,
        };
        EvalScenario {
            name: name.into(),
            link: Link::new(environment),
            dut,
            fixed,
            patterns,
            eval_grid,
            sweeps_per_position,
        }
    }

    /// Records full sector sweeps at every orientation of the eval grid.
    pub fn record(&mut self, seed: u64) -> RecordedDataset {
        let mut span = obs::sink_active().then(|| obs::span("eval.record"));
        obs::counter("eval.records").inc();
        if let Some(span) = &mut span {
            span.field("positions", self.eval_grid.len() as f64);
            span.field("sweeps_per_position", self.sweeps_per_position as f64);
        }
        let mut rng = sub_rng(seed, "scenario-record");
        let mut head = RotationHead::paper_setup(seed);
        let sweep_order = self.dut.codebook.sweep_order();
        let rx_weights = self.fixed.codebook.rx_sector().weights.clone();
        let mut positions = Vec::with_capacity(self.eval_grid.len());
        for (_, truth) in self.eval_grid.iter() {
            head.set_tilt(-truth.el_deg);
            head.set_azimuth(-truth.az_deg);
            self.dut.orientation = head.realized_orientation();
            // Noise-free reference SNR per sector at this orientation.
            let true_snr: Vec<(SectorId, f64)> = sweep_order
                .iter()
                .map(|&s| {
                    (
                        s,
                        self.link
                            .true_snr_db(&self.dut, s, &self.fixed, &rx_weights),
                    )
                })
                .collect();
            let sweeps: Vec<Vec<SweepReading>> = (0..self.sweeps_per_position)
                .map(|_| {
                    self.link
                        .sweep(&mut rng, &self.dut, &sweep_order, &self.fixed)
                })
                .collect();
            positions.push(RecordedPosition {
                truth,
                true_snr,
                sweeps,
            });
        }
        RecordedDataset {
            scenario: self.name.clone(),
            positions,
        }
    }
}

/// All recordings at one orientation.
#[derive(Debug, Clone)]
pub struct RecordedPosition {
    /// The commanded (believed) device-coordinate signal direction.
    pub truth: Direction,
    /// Noise-free SNR per sector (the "optimal" reference of Fig. 9).
    pub true_snr: Vec<(SectorId, f64)>,
    /// Recorded full sweeps (reported measurements).
    pub sweeps: Vec<Vec<SweepReading>>,
}

impl RecordedPosition {
    /// The sector with the highest noise-free SNR and that SNR.
    pub fn optimal(&self) -> (SectorId, f64) {
        self.true_snr
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("SNR is finite"))
            .expect("non-empty sector list")
    }

    /// Noise-free SNR of a given sector.
    pub fn true_snr_of(&self, id: SectorId) -> Option<f64> {
        self.true_snr
            .iter()
            .find(|(s, _)| *s == id)
            .map(|&(_, v)| v)
    }
}

/// A full recorded experiment.
#[derive(Debug, Clone)]
pub struct RecordedDataset {
    /// Which scenario produced it.
    pub scenario: String,
    /// Per-orientation recordings.
    pub positions: Vec<RecordedPosition>,
}

/// Draws the readings of a random `m`-sector probing subset from a recorded
/// full sweep — the offline-analysis step of §6.1.
pub fn random_subset<R: Rng>(rng: &mut R, sweep: &[SweepReading], m: usize) -> Vec<SweepReading> {
    let idx = geom::rng::sample_indices(rng, sweep.len(), m.min(sweep.len()));
    idx.into_iter().map(|i| sweep[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_lab_scenario_records_expected_shape() {
        let mut s = EvalScenario::lab(Fidelity::Fast, 77);
        let data = s.record(77);
        assert_eq!(data.scenario, "lab");
        assert_eq!(data.positions.len(), s.eval_grid.len());
        let p = &data.positions[0];
        assert_eq!(p.sweeps.len(), 4);
        assert_eq!(p.sweeps[0].len(), 34);
        assert_eq!(p.true_snr.len(), 34);
    }

    #[test]
    fn optimal_sector_has_max_true_snr() {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 78);
        let data = s.record(78);
        for p in &data.positions {
            let (opt, snr) = p.optimal();
            for &(id, v) in &p.true_snr {
                assert!(v <= snr, "sector {id} has {v} > optimal {snr}");
            }
            assert_eq!(p.true_snr_of(opt), Some(snr));
        }
    }

    #[test]
    fn frontal_positions_have_usable_link() {
        let mut s = EvalScenario::lab(Fidelity::Fast, 79);
        let data = s.record(79);
        // At broadside-ish truth directions the best sector must be strong.
        let frontal = data
            .positions
            .iter()
            .find(|p| p.truth.az_deg.abs() < 16.0 && p.truth.el_deg < 11.0)
            .expect("grid covers frontal region");
        assert!(frontal.optimal().1 > 3.0, "optimal {}", frontal.optimal().1);
    }

    #[test]
    fn random_subset_draws_m_readings() {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 80);
        let data = s.record(80);
        let sweep = &data.positions[0].sweeps[0];
        let mut rng = sub_rng(1, "subset");
        let sub = random_subset(&mut rng, sweep, 14);
        assert_eq!(sub.len(), 14);
        // All drawn readings exist in the original sweep.
        for r in &sub {
            assert!(sweep.iter().any(|o| o.sector == r.sector));
        }
    }

    #[test]
    fn recording_is_deterministic_per_seed() {
        let mut a = EvalScenario::conference_room(Fidelity::Fast, 81);
        let mut b = EvalScenario::conference_room(Fidelity::Fast, 81);
        let da = a.record(5);
        let db = b.record(5);
        assert_eq!(da.positions[3].sweeps[1], db.positions[3].sweeps[1]);
    }
}
