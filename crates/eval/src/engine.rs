//! Deterministic parallel execution of Monte Carlo work units.
//!
//! Every experiment in this crate is a loop over independent work units
//! (position × sweep × draw cells). [`par_map`] shards such a loop across
//! scoped threads (via the workspace `crossbeam` shim) with two invariants
//! that make parallelism invisible to the results:
//!
//! 1. **Unit-keyed randomness.** Workers never share an RNG; each unit
//!    derives its own stream from `(seed, label, unit index)` via
//!    [`geom::rng::sub_rng_indexed`]. A unit's output therefore depends
//!    only on its index, not on which thread ran it or in what order.
//! 2. **Index-ordered merge.** Threads grab chunks of the unit range from
//!    an atomic cursor (work-stealing-style dynamic scheduling, so a slow
//!    chunk does not stall the others) and return `(chunk_start, results)`
//!    pairs; the merge sorts by chunk start, restoring exact unit order.
//!
//! Together these make the output of `par_map` **bit-identical** for any
//! thread count, including the inline `threads == 1` path — asserted by
//! `tests/parallel_determinism.rs` at 1, 2 and 8 threads.
//!
//! The same discipline extends to observability: while a sink records,
//! each work unit runs as its own trace (ids reserved in a block on the
//! coordinating thread, so unit *i* is always trace `base + i`), its
//! events are captured in per-thread buffers instead of hitting the sink
//! from workers, and the merge replays them in unit-index order — the
//! emitted trace stream is structurally identical at any thread count.
//!
//! Workers also report scheduler telemetry — per-worker busy/idle time,
//! units processed, and remaining-queue depth as `worker="k"` labeled
//! series, plus an `eval.worker_imbalance_ppm` rollup. The telemetry is
//! metrics-only (atomic counters, never the trace stream), so it cannot
//! perturb the bit-identical-traces guarantee above.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Chunks processed per thread (on average) per grab. More chunks smooth
/// load imbalance; fewer amortize the cursor contention better.
const CHUNKS_PER_THREAD: usize = 16;

/// The thread count used by the experiment entry points: the
/// `TALON_EVAL_THREADS` environment variable if set (clamped to ≥ 1),
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("TALON_EVAL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over the unit indices `0..n_units` on `threads` threads and
/// returns the results in unit order.
///
/// `make_worker` builds one per-thread state value (estimator scratch,
/// a `CompressiveSelection` instance, …) so workers need no locking;
/// `f(worker, unit)` computes the `unit`-th result. `f` must derive any
/// randomness it needs from the unit index (see the module docs) — that is
/// what makes the output independent of `threads`.
pub fn par_map<T, W, M, F>(n_units: usize, threads: usize, make_worker: M, f: F) -> Vec<T>
where
    T: Send,
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let threads = threads.clamp(1, n_units.max(1));
    let recording = obs::sink_active();
    let mut span = recording.then(|| obs::span("eval.par_map"));
    if let Some(span) = &mut span {
        span.field("units", n_units as f64);
        span.field("threads", threads as f64);
    }
    // While a sink records, every work unit becomes its own trace. The id
    // block is reserved here, on the coordinating thread, so unit i always
    // gets `trace_base + i` no matter which worker runs it; unit events are
    // captured per unit (see `obs::with_context`) and forwarded to the sink
    // in unit-index order below, which makes the trace stream — not just
    // the results — identical at any thread count.
    let trace_base = recording.then(|| obs::reserve_trace_ids(n_units.max(1) as u64));
    let run_unit = |w: &mut W, i: usize, captured: &mut Vec<obs::Captured>| -> T {
        match trace_base {
            Some(base) => {
                let ctx = obs::TraceContext::for_trace_id(base + i as u64);
                let (out, mut unit_captured) = obs::with_context(&ctx, || f(w, i));
                captured.append(&mut unit_captured);
                out
            }
            None => f(w, i),
        }
    };
    if threads == 1 {
        let started = Instant::now();
        let mut w = make_worker();
        let mut captured = Vec::new();
        let out = (0..n_units)
            .map(|i| run_unit(&mut w, i, &mut captured))
            .collect();
        for item in &captured {
            item.forward_to_sink();
        }
        let busy = started.elapsed().as_nanos() as u64;
        publish_worker(0, busy, 0, n_units as u64);
        publish_imbalance(&[busy]);
        return out;
    }
    // One finished chunk: (first unit index, results, captured trace
    // records — span events and decision records, interleaved in order).
    type Chunk<T> = (usize, Vec<T>, Vec<obs::Captured>);
    let chunk = (n_units / (threads * CHUNKS_PER_THREAD)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<Chunk<T>>> = Mutex::new(Vec::new());
    let busy_by_worker: Mutex<Vec<u64>> = Mutex::new(vec![0; threads]);
    crossbeam::thread::scope(|s| {
        // `move` below is only for `k`; everything else crosses by shared
        // reference.
        let make_worker = &make_worker;
        let run_unit = &run_unit;
        let cursor = &cursor;
        let parts = &parts;
        for k in 0..threads {
            let busy_by_worker = &busy_by_worker;
            s.spawn(move || {
                let wall = Instant::now();
                let queue_depth = worker_queue_gauge(k);
                let mut w = make_worker();
                let mut busy_ns = 0u64;
                let mut units = 0u64;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n_units {
                        queue_depth.set(0);
                        break;
                    }
                    let end = (start + chunk).min(n_units);
                    queue_depth.set(n_units.saturating_sub(end) as i64);
                    let grabbed = Instant::now();
                    let mut captured = Vec::new();
                    let out: Vec<T> = (start..end)
                        .map(|i| run_unit(&mut w, i, &mut captured))
                        .collect();
                    busy_ns += grabbed.elapsed().as_nanos() as u64;
                    units += (end - start) as u64;
                    parts
                        .lock()
                        .expect("no poisoned workers")
                        .push((start, out, captured));
                }
                let wall_ns = wall.elapsed().as_nanos() as u64;
                publish_worker(k, busy_ns, wall_ns.saturating_sub(busy_ns), units);
                busy_by_worker.lock().expect("no poisoned workers")[k] = busy_ns;
            });
        }
    })
    .expect("scoped eval workers join cleanly");
    publish_imbalance(&busy_by_worker.into_inner().expect("workers done"));
    let mut parts = parts.into_inner().expect("workers done");
    parts.sort_unstable_by_key(|&(start, ..)| start);
    let mut merged = Vec::with_capacity(n_units);
    for (_, mut part, captured) in parts {
        merged.append(&mut part);
        // Units within a chunk ran sequentially, and chunks are sorted by
        // start, so this replays the capture in global unit order.
        for item in &captured {
            item.forward_to_sink();
        }
    }
    debug_assert_eq!(merged.len(), n_units);
    merged
}

/// The `worker.queue_remaining{worker="k"}` gauge: units still unclaimed
/// by any worker the last time worker `k` grabbed from the cursor.
fn worker_queue_gauge(k: usize) -> std::sync::Arc<obs::Gauge> {
    let label = k.to_string();
    obs::gauge_with(
        "worker.queue_remaining",
        &obs::LabelSet::from_pairs(&[("worker", &label)]),
    )
}

/// Publishes one worker's scheduler telemetry as `worker="k"` labeled
/// counters. Metrics only — never the trace stream — so telemetry cannot
/// perturb trace determinism.
fn publish_worker(k: usize, busy_ns: u64, idle_ns: u64, units: u64) {
    let label = k.to_string();
    let labels = obs::LabelSet::from_pairs(&[("worker", &label)]);
    obs::counter_with("worker.busy_ns", &labels).add(busy_ns);
    obs::counter_with("worker.idle_ns", &labels).add(idle_ns);
    obs::counter_with("worker.units", &labels).add(units);
}

/// Publishes the busy-time imbalance of one `par_map` call:
/// `(max - min) / max` across workers, in ppm. 0 means perfectly even;
/// 1_000_000 means at least one worker sat fully idle.
fn publish_imbalance(busy_ns: &[u64]) {
    let max = busy_ns.iter().copied().max().unwrap_or(0);
    let min = busy_ns.iter().copied().min().unwrap_or(0);
    let ppm = if max == 0 {
        0
    } else {
        ((max - min) as u128 * 1_000_000 / max as u128) as i64
    };
    obs::gauge("eval.worker_imbalance_ppm").set(ppm);
}

/// Maps `f` over fixed-size *batches* of the unit range `0..n_units` and
/// returns per-unit results in unit order.
///
/// Batch boundaries depend only on `(n_units, batch)` — batch `k` always
/// covers `k·batch .. min((k+1)·batch, n_units)` — never on the thread
/// count, so a kernel whose arithmetic is invariant to batch composition
/// (like [`css::BatchEstimator`], where every link occupies its own panel
/// column) stays **bit-identical** at any `threads`. Each batch is one
/// [`par_map`] work unit, inheriting its dynamic scheduling, ordered
/// merge, and trace capture (one trace id per batch).
///
/// `f(worker, range)` must return exactly `range.len()` results, one per
/// unit, in unit order.
pub fn par_map_batched<T, W, M, F>(
    n_units: usize,
    threads: usize,
    batch: usize,
    make_worker: M,
    f: F,
) -> Vec<T>
where
    T: Send,
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let batch = batch.max(1);
    let n_batches = n_units.div_ceil(batch);
    let parts = par_map(n_batches, threads, make_worker, |w, k| {
        let start = k * batch;
        let end = (start + batch).min(n_units);
        let out = f(w, start..end);
        assert_eq!(
            out.len(),
            end - start,
            "batch fn must return one result per unit"
        );
        out
    });
    let mut merged = Vec::with_capacity(n_units);
    for part in parts {
        merged.extend(part);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_arrive_in_unit_order() {
        let out = par_map(97, 4, || (), |_, i| i * 3);
        assert_eq!(out, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads| {
            par_map(
                50,
                threads,
                || (),
                |_, i| {
                    let mut rng = geom::rng::sub_rng_indexed(42, "engine-test", i as u64);
                    rng.gen::<u64>()
                },
            )
        };
        let seq = run(1);
        assert_eq!(seq, run(2));
        assert_eq!(seq, run(8));
    }

    #[test]
    fn worker_state_is_per_thread() {
        // Each worker counts its own units; the sum covers every unit once.
        let counts: Vec<usize> = par_map(
            1000,
            3,
            || 0usize,
            |local, _| {
                *local += 1;
                *local
            },
        );
        assert_eq!(counts.len(), 1000);
    }

    #[test]
    fn batched_boundaries_are_thread_invariant() {
        // Each unit records which batch it ran in; the grouping must be a
        // pure function of (n_units, batch), not of the thread count.
        let run = |threads| {
            par_map_batched(
                103,
                threads,
                16,
                || (),
                |_, range| {
                    let start = range.start;
                    range.map(|i| (i, start)).collect()
                },
            )
        };
        let seq = run(1);
        assert_eq!(seq.len(), 103);
        for &(i, start) in &seq {
            assert_eq!(start, (i / 16) * 16);
        }
        assert_eq!(seq, run(2));
        assert_eq!(seq, run(8));
    }

    #[test]
    fn batched_handles_ragged_tail_and_zero() {
        let out = par_map_batched(10, 4, 3, || (), |_, r| r.map(|i| i * 2).collect());
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let empty: Vec<u8> = par_map_batched(0, 4, 3, || (), |_, r| r.map(|_| 0).collect());
        assert!(empty.is_empty());
    }

    #[test]
    fn workers_publish_scheduler_telemetry() {
        par_map(64, 2, || (), |_, i| i);
        let snap = obs::global().snapshot();
        for k in ["0", "1"] {
            let labels = obs::LabelSet::from_pairs(&[("worker", k)]);
            assert!(
                snap.counters
                    .contains_key(&labels.qualify("worker.busy_ns")),
                "worker {k} busy series missing"
            );
            assert!(
                snap.counters.contains_key(&labels.qualify("worker.units")),
                "worker {k} units series missing"
            );
            assert_eq!(
                snap.gauges[&labels.qualify("worker.queue_remaining")],
                0,
                "queue drained at exit"
            );
        }
        let units: u64 = ["0", "1"]
            .iter()
            .map(|k| {
                let labels = obs::LabelSet::from_pairs(&[("worker", k)]);
                snap.counter(&labels.qualify("worker.units"))
            })
            .sum();
        assert!(units >= 64, "every unit counted (other tests may add more)");
        assert!(
            snap.gauges.contains_key("eval.worker_imbalance_ppm"),
            "imbalance rollup published"
        );
        let ppm = snap.gauges["eval.worker_imbalance_ppm"];
        assert!((0..=1_000_000).contains(&ppm), "ppm in range: {ppm}");
    }

    #[test]
    fn zero_units_is_fine() {
        let out: Vec<u8> = par_map(0, 8, || (), |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn env_override_clamps_to_one() {
        // Can't set the env var safely in-process (tests run threaded), but
        // the clamp logic is exercised through par_map's threads argument.
        let out = par_map(5, 0, || (), |_, i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }
}
