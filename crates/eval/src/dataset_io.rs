//! Recorded-dataset persistence.
//!
//! The paper's evaluation records full sweeps on the devices and analyses
//! them offline in MATLAB ("We then perform offline analyses…", §6.1), and
//! the authors publish their measurements. This module gives
//! [`RecordedDataset`] the same property: a line-oriented text format that
//! round-trips exactly, so an expensive recording session can be archived
//! and re-analysed with different probe counts, estimators or seeds.
//!
//! ```text
//! talon-dataset-v1
//! scenario <name>
//! position <idx> <truth_az> <truth_el>
//! truesnr <idx> <sector>:<snr> <sector>:<snr> …
//! sweep <idx> <sweep_no> <sector>:<snr>:<rssi>|<sector>:- …
//! ```

use crate::scenario::{RecordedDataset, RecordedPosition};
use geom::sphere::Direction;
use talon_array::SectorId;
use talon_channel::{Measurement, SweepReading};

/// Errors when loading a dataset file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Missing or wrong magic line.
    BadMagic,
    /// A line did not parse (1-based line number).
    Malformed(usize),
    /// A record referenced a position that was never declared.
    UnknownPosition(usize),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::BadMagic => write!(f, "not a talon-dataset-v1 file"),
            DatasetError::Malformed(n) => write!(f, "malformed line {n}"),
            DatasetError::UnknownPosition(p) => write!(f, "unknown position index {p}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Serializes a dataset.
pub fn to_text(data: &RecordedDataset) -> String {
    let mut out = String::from("talon-dataset-v1\n");
    out.push_str(&format!("scenario {}\n", data.scenario));
    for (i, pos) in data.positions.iter().enumerate() {
        out.push_str(&format!(
            "position {i} {} {}\n",
            pos.truth.az_deg, pos.truth.el_deg
        ));
        out.push_str(&format!("truesnr {i}"));
        for (sector, snr) in &pos.true_snr {
            out.push_str(&format!(" {}:{snr}", sector.raw()));
        }
        out.push('\n');
        for (k, sweep) in pos.sweeps.iter().enumerate() {
            out.push_str(&format!("sweep {i} {k}"));
            for r in sweep {
                match r.measurement {
                    Some(m) => {
                        out.push_str(&format!(" {}:{}:{}", r.sector.raw(), m.snr_db, m.rssi_dbm))
                    }
                    None => out.push_str(&format!(" {}:-", r.sector.raw())),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Parses a dataset back.
pub fn from_text(text: &str) -> Result<RecordedDataset, DatasetError> {
    let mut lines = text.lines().enumerate();
    let (_, magic) = lines.next().ok_or(DatasetError::BadMagic)?;
    if magic.trim() != "talon-dataset-v1" {
        return Err(DatasetError::BadMagic);
    }
    let mut scenario = String::new();
    let mut positions: Vec<RecordedPosition> = Vec::new();
    for (n, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = || DatasetError::Malformed(n + 1);
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("scenario") => {
                scenario = parts.collect::<Vec<_>>().join(" ");
            }
            Some("position") => {
                let idx: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                if idx != positions.len() {
                    return Err(DatasetError::Malformed(n + 1));
                }
                let az: f64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                let el: f64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                positions.push(RecordedPosition {
                    truth: Direction::new(az, el),
                    true_snr: Vec::new(),
                    sweeps: Vec::new(),
                });
            }
            Some("truesnr") => {
                let idx: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                let pos = positions
                    .get_mut(idx)
                    .ok_or(DatasetError::UnknownPosition(idx))?;
                for tok in parts {
                    let (sec, snr) = tok.split_once(':').ok_or_else(err)?;
                    let sector: u8 = sec.parse().map_err(|_| err())?;
                    let snr: f64 = snr.parse().map_err(|_| err())?;
                    pos.true_snr.push((SectorId(sector), snr));
                }
            }
            Some("sweep") => {
                let idx: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                let _sweep_no: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                let pos = positions
                    .get_mut(idx)
                    .ok_or(DatasetError::UnknownPosition(idx))?;
                let mut readings = Vec::new();
                for tok in parts {
                    let mut fields = tok.split(':');
                    let sector: u8 = fields.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                    let second = fields.next().ok_or_else(err)?;
                    let measurement = if second == "-" {
                        None
                    } else {
                        let snr: f64 = second.parse().map_err(|_| err())?;
                        let rssi: f64 =
                            fields.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
                        Some(Measurement {
                            snr_db: snr,
                            rssi_dbm: rssi,
                        })
                    };
                    readings.push(SweepReading {
                        sector: SectorId(sector),
                        measurement,
                    });
                }
                pos.sweeps.push(readings);
            }
            _ => return Err(err()),
        }
    }
    Ok(RecordedDataset {
        scenario,
        positions,
    })
}

/// Saves a dataset to a file.
pub fn save(data: &RecordedDataset, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(data))
}

/// Loads a dataset from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<Result<RecordedDataset, DatasetError>> {
    Ok(from_text(&std::fs::read_to_string(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EvalScenario, Fidelity};

    fn tiny_dataset() -> RecordedDataset {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 1200);
        s.sweeps_per_position = 2;
        s.record(1200)
    }

    #[test]
    fn roundtrip_is_exact() {
        let data = tiny_dataset();
        let text = to_text(&data);
        let back = from_text(&text).unwrap();
        assert_eq!(back.scenario, data.scenario);
        assert_eq!(back.positions.len(), data.positions.len());
        for (a, b) in data.positions.iter().zip(&back.positions) {
            assert_eq!(a.truth, b.truth);
            assert_eq!(a.true_snr, b.true_snr);
            assert_eq!(a.sweeps, b.sweeps);
        }
    }

    #[test]
    fn reanalysis_on_reloaded_data_matches() {
        // The Fig. 9 analysis must give identical numbers on the reloaded
        // dataset (the whole point of offline persistence).
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 1201);
        s.sweeps_per_position = 4;
        let data = s.record(1201);
        let reloaded = from_text(&to_text(&data)).unwrap();
        let a = crate::snr_loss::snr_loss(&data, &s.patterns, &[8, 20], 1);
        let b = crate::snr_loss::snr_loss(&reloaded, &s.patterns, &[8, 20], 1);
        assert_eq!(a.ssw_loss_db, b.ssw_loss_db);
        assert_eq!(a.css, b.css);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert_eq!(from_text("nope\n").unwrap_err(), DatasetError::BadMagic);
        assert_eq!(
            from_text("talon-dataset-v1\nbogus line\n").unwrap_err(),
            DatasetError::Malformed(2)
        );
        assert_eq!(
            from_text("talon-dataset-v1\ntruesnr 3 1:2.0\n").unwrap_err(),
            DatasetError::UnknownPosition(3)
        );
        assert_eq!(
            from_text("talon-dataset-v1\nposition 0 0 0\nsweep 0 0 1:x:y\n").unwrap_err(),
            DatasetError::Malformed(3)
        );
    }

    #[test]
    fn file_roundtrip() {
        let data = tiny_dataset();
        let dir = std::env::temp_dir().join("talon-dataset-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.txt");
        save(&data, &path).unwrap();
        let back = load(&path).unwrap().unwrap();
        assert_eq!(back.positions[0].sweeps, data.positions[0].sweeps);
        std::fs::remove_file(&path).ok();
    }
}
