//! Trace-driven replay: re-execute recorded decisions and assert
//! bit-exact agreement.
//!
//! A replayable [`obs::DecisionRecord`] carries the full input closure of
//! one kernel run — the probed sectors, raw SNR/RSSI vectors, mask flags,
//! the estimator mode and options, and an FNV-1a digest of the pattern
//! database. [`replay_trace`] reconstructs those inputs, rebuilds the
//! pattern database from the record's `context` string (or an explicit
//! override), re-runs [`css::CompressiveEstimator`] through the same code
//! path the live selection used, and compares every recorded output —
//! `(φ̂, θ̂)`, the correlation score, the top-k map cells and weights, the
//! energy normalizer, and the chosen sector — at a tolerance set by the
//! record's stamped `kernel_path`: 1e-12 for the f64 reference (values
//! round-trip JSONL bit-exactly, so any real difference means the kernel
//! changed or the trace is corrupt), and documented relaxed bounds for
//! the reduced-precision batch paths (see [`tolerance_for`]). A record
//! stamped with an unknown kernel path is skipped as non-replayable
//! rather than compared against the wrong arithmetic.
//!
//! Replay fans out over [`crate::engine::par_map`], and because the
//! kernel is deterministic the report is identical at any thread count —
//! the CI `replay-determinism` job runs the same trace at 1, 2, and 8
//! threads.

use crate::engine::{default_threads, par_map};
use crate::scenario::{EvalScenario, Fidelity};
use chamber::SectorPatterns;
use css::estimator::{EstimatorOptions, KernelPath};
use css::{patterns_digest, CompressiveEstimator, CorrelationMode};
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy};
use obs::jsonl::Trace;
use obs::DecisionRecord;
use serde::Serialize;
use std::collections::BTreeMap;
use talon_array::SectorId;
use talon_channel::{Measurement, SweepReading};

/// Absolute tolerance for replayed f64 outputs. JSONL stores f64 with
/// shortest round-trip formatting, so recorded and recomputed values are
/// bit-identical unless the kernel itself changed; the tolerance only
/// absorbs printing of values that were never written (e.g. `-0.0`).
pub const TOLERANCE: f64 = 1e-12;

/// Absolute tolerance for a record stamped with `kernel_path`.
///
/// Replay re-executes the *same* deterministic kernel the live path ran
/// (q15 is integer-exact; f32 is lane-width-invariant by construction),
/// so in practice every path reproduces bit-exactly on the recording
/// machine. The relaxed bounds for the reduced-precision paths absorb
/// cross-build codegen differences in f32 transcendentals and leave the
/// comparator meaningful rather than vacuous.
pub fn tolerance_for(path: KernelPath) -> f64 {
    match path {
        KernelPath::F64 => TOLERANCE,
        KernelPath::F32 => 1e-4,
        KernelPath::Q15 => 1e-3,
    }
}

/// How a replay run executes.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Worker threads for the fan-out (`TALON_EVAL_THREADS` default).
    pub threads: usize,
    /// Perturbation added to every unmasked SNR input, dB. Zero for a
    /// faithful replay; non-zero exists to prove the comparator catches
    /// divergences (the CI job's negative control).
    pub perturb_snr_db: f64,
    /// Pattern database to replay against, bypassing context
    /// reconstruction. Used by tests and by traces recorded outside a
    /// named scenario.
    pub patterns_override: Option<SectorPatterns>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            threads: default_threads(),
            perturb_snr_db: 0.0,
            patterns_override: None,
        }
    }
}

/// One recorded-vs-recomputed mismatch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Divergence {
    /// Index of the decision within the trace's decision stream.
    pub index: usize,
    /// Trace (session / eval unit) the decision belongs to.
    pub trace_id: u64,
    /// Which output diverged (`est_az_deg`, `top_weights[3]`, ...).
    pub field: String,
    /// The recorded value.
    pub expected: String,
    /// The recomputed value.
    pub actual: String,
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ReplayReport {
    /// Decision records in the trace.
    pub total_decisions: usize,
    /// Records re-executed and compared.
    pub replayed: usize,
    /// Records marked non-replayable by their producer (SLS sweep
    /// provenance, unknown correlation mode).
    pub skipped_non_replayable: usize,
    /// Replayable records whose pattern database could not be
    /// reconstructed (no context and no override).
    pub skipped_no_patterns: usize,
    /// Records whose recorded `patterns_digest` does not match the
    /// reconstructed database — the trace and the rebuilt patterns
    /// disagree, so outputs were not compared.
    pub digest_mismatches: usize,
    /// Every output mismatch, in decision order.
    pub divergent: Vec<Divergence>,
    /// Largest absolute error observed across all compared f64 outputs
    /// (0.0 on a bit-exact replay).
    pub max_abs_err: f64,
}

impl ReplayReport {
    /// Whether every replayed decision reproduced bit-exactly and nothing
    /// blocked comparison.
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty() && self.digest_mismatches == 0 && self.skipped_no_patterns == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "replayed {}/{} decisions: {} divergent, {} digest mismatch(es), \
             {} skipped (non-replayable), {} skipped (no patterns), max |err| {:.3e}",
            self.replayed,
            self.total_decisions,
            self.divergent.len(),
            self.digest_mismatches,
            self.skipped_non_replayable,
            self.skipped_no_patterns,
            self.max_abs_err,
        )
    }
}

/// Parses a record's reconstruction context
/// (`scenario=lab,fidelity=fast,seed=42`) into constructor arguments.
fn parse_context(ctx: &str) -> Option<(String, Fidelity, u64)> {
    let mut scenario = None;
    let mut fidelity = Fidelity::Fast;
    let mut seed = 0u64;
    for part in ctx.split(',') {
        let (key, value) = part.split_once('=')?;
        match key.trim() {
            "scenario" => scenario = Some(value.trim().to_string()),
            "fidelity" => {
                fidelity = match value.trim() {
                    "fast" => Fidelity::Fast,
                    "paper" => Fidelity::Paper,
                    _ => return None,
                }
            }
            "seed" => seed = value.trim().parse().ok()?,
            _ => {} // forward-compatible: ignore unknown keys
        }
    }
    scenario.map(|s| (s, fidelity, seed))
}

/// Rebuilds the pattern database a context string names, by re-running
/// the (deterministic) anechoic measurement campaign of that scenario.
fn patterns_for_context(ctx: &str) -> Option<SectorPatterns> {
    let (scenario, fidelity, seed) = parse_context(ctx)?;
    match scenario.as_str() {
        "lab" => Some(EvalScenario::lab(fidelity, seed).patterns),
        "conference-room" => Some(EvalScenario::conference_room(fidelity, seed).patterns),
        _ => None,
    }
}

/// A decision ready to re-execute: the record plus the estimator (and
/// patterns) reconstructed for its context.
struct Job<'a> {
    index: usize,
    rec: &'a DecisionRecord,
    est: usize,
}

/// Incremental replay over a stream of decision records.
///
/// [`replay_trace`] feeds a whole in-memory [`Trace`] through one of
/// these; the soak harness (`crate::soak`) instead feeds bounded chunks
/// straight off a streaming binary reader, so a million-decision trace
/// replays without ever materializing in memory. Reconstructed pattern
/// databases and estimators are cached across chunks (decisions from one
/// run share a context, so the cache stays tiny), and reports merge in
/// decision order regardless of chunking or thread count.
pub struct ReplaySession {
    config: ReplayConfig,
    report: ReplayReport,
    /// Pattern database per context string, built once each.
    patterns_by_ctx: BTreeMap<String, Option<(SectorPatterns, u64)>>,
    /// Estimator per (context, mode, options) — decisions from one run
    /// share one, so this stays tiny.
    est_keys: Vec<(String, String, EstimatorOptions)>,
    estimators: Vec<(CompressiveEstimator, SectorPatterns)>,
    /// Global decision index across every chunk fed so far.
    next_index: usize,
}

impl ReplaySession {
    /// An empty session; feed it chunks, then [`ReplaySession::finish`].
    pub fn new(config: ReplayConfig) -> Self {
        ReplaySession {
            config,
            report: ReplayReport::default(),
            patterns_by_ctx: BTreeMap::new(),
            est_keys: Vec::new(),
            estimators: Vec::new(),
            next_index: 0,
        }
    }

    /// Re-executes one chunk of decisions (fanning out over
    /// `config.threads`) and folds the outcomes into the running report.
    pub fn replay_chunk(&mut self, decisions: &[DecisionRecord]) {
        self.report.total_decisions += decisions.len();
        let mut jobs: Vec<Job> = Vec::new();
        for rec in decisions {
            let index = self.next_index;
            self.next_index += 1;
            if !rec.replayable {
                self.report.skipped_non_replayable += 1;
                continue;
            }
            let mode = match rec.mode.as_str() {
                "snr" => CorrelationMode::SnrOnly,
                "joint" => CorrelationMode::JointSnrRssi,
                _ => {
                    self.report.skipped_non_replayable += 1;
                    continue;
                }
            };
            let override_patterns = &self.config.patterns_override;
            let entry = self
                .patterns_by_ctx
                .entry(rec.context.clone())
                .or_insert_with(|| {
                    let p = match override_patterns {
                        Some(p) => Some(p.clone()),
                        None => patterns_for_context(&rec.context),
                    };
                    p.map(|p| {
                        let d = patterns_digest(&p);
                        (p, d)
                    })
                });
            let Some((patterns, digest)) = entry else {
                self.report.skipped_no_patterns += 1;
                continue;
            };
            if *digest != rec.patterns_digest {
                self.report.digest_mismatches += 1;
                self.report.divergent.push(Divergence {
                    index,
                    trace_id: rec.trace_id,
                    field: "patterns_digest".into(),
                    expected: format!("{:#018x}", rec.patterns_digest),
                    actual: format!("{digest:#018x}"),
                });
                continue;
            }
            // An unknown kernel path (a future schema's) cannot be
            // re-executed faithfully; skip rather than miscompare.
            let Some(kernel_path) = KernelPath::from_str(&rec.kernel_path) else {
                self.report.skipped_non_replayable += 1;
                continue;
            };
            let options = EstimatorOptions {
                energy_prior: rec.energy_prior,
                smoothing: rec.smoothing,
                subcell_refinement: rec.subcell_refinement,
                kernel_path,
            };
            let key = (rec.context.clone(), rec.mode.clone(), options);
            let est = match self.est_keys.iter().position(|k| *k == key) {
                Some(i) => i,
                None => {
                    self.est_keys.push(key);
                    self.estimators.push((
                        CompressiveEstimator::new(patterns, mode).with_options(options),
                        patterns.clone(),
                    ));
                    self.estimators.len() - 1
                }
            };
            jobs.push(Job { index, rec, est });
        }

        let estimators = &self.estimators;
        let jobs = &jobs;
        let perturb = self.config.perturb_snr_db;
        let results: Vec<(Vec<Divergence>, f64)> = par_map(
            jobs.len(),
            self.config.threads.max(1),
            || (),
            |(), i| {
                let job = &jobs[i];
                let (est, patterns) = &estimators[job.est];
                replay_one(job.index, job.rec, est, patterns, perturb)
            },
        );
        for (divergent, max_err) in results {
            self.report.replayed += 1;
            self.report.max_abs_err = self.report.max_abs_err.max(max_err);
            self.report.divergent.extend(divergent);
        }
    }

    /// The merged report over everything fed so far.
    pub fn finish(self) -> ReplayReport {
        self.report
    }
}

/// Re-executes every replayable decision in `trace` and compares outputs.
///
/// Deterministic at any `config.threads`: pattern databases and
/// estimators are built once on the coordinating thread, the fan-out is
/// a pure map, and results merge in decision order.
pub fn replay_trace(trace: &Trace, config: &ReplayConfig) -> ReplayReport {
    let mut session = ReplaySession::new(config.clone());
    session.replay_chunk(&trace.decisions);
    session.finish()
}

/// Accumulates field comparisons for one replayed decision.
struct Comparator {
    index: usize,
    trace_id: u64,
    divergent: Vec<Divergence>,
    max_err: f64,
    /// Per-record tolerance, from the stamped kernel path.
    tol: f64,
}

impl Comparator {
    fn diverge(&mut self, field: String, expected: String, actual: String) {
        self.divergent.push(Divergence {
            index: self.index,
            trace_id: self.trace_id,
            field,
            expected,
            actual,
        });
    }

    fn check_f64(&mut self, field: String, expected: f64, actual: f64) {
        let err = (expected - actual).abs();
        self.max_err = self.max_err.max(err);
        // NaN errors (one side NaN, the other not) must diverge too.
        if err > self.tol || err.is_nan() {
            self.diverge(field, format!("{expected:?}"), format!("{actual:?}"));
        }
    }
}

/// Re-executes one decision and compares every recorded output.
fn replay_one(
    index: usize,
    rec: &DecisionRecord,
    est: &CompressiveEstimator,
    patterns: &SectorPatterns,
    perturb_snr_db: f64,
) -> (Vec<Divergence>, f64) {
    let mut cmp = Comparator {
        index,
        trace_id: rec.trace_id,
        divergent: Vec::new(),
        max_err: 0.0,
        tol: tolerance_for(est.options.kernel_path),
    };

    // Rebuild the sweep readings exactly as the kernel saw them.
    let n = rec.probed.len();
    let mut readings = Vec::with_capacity(n);
    for i in 0..n {
        let measurement = (!rec.masked[i]).then(|| Measurement {
            snr_db: rec.snr_db[i] + perturb_snr_db,
            rssi_dbm: rec.rssi_dbm[i],
        });
        readings.push(SweepReading {
            sector: SectorId(rec.probed[i] as u8),
            measurement,
        });
    }

    // Re-run the fused kernel and its provenance closure.
    let estimate = est.estimate(&readings);
    let closure = est.kernel_closure(&readings, rec.top_cells.len());

    if rec.has_estimate != estimate.is_some() {
        cmp.diverge(
            "has_estimate".into(),
            rec.has_estimate.to_string(),
            estimate.is_some().to_string(),
        );
    } else if let Some((dir, score)) = estimate {
        cmp.check_f64("est_az_deg".into(), rec.est_az_deg, dir.az_deg);
        cmp.check_f64("est_el_deg".into(), rec.est_el_deg, dir.el_deg);
        cmp.check_f64("score".into(), rec.score, score);
    }

    // The same Eq. 4 selection step the live path ran.
    let (chosen, fallback) = match estimate {
        Some((dir, _)) => (patterns.best_sector_at(&dir), false),
        None => (MaxSnrPolicy.select(&readings), true),
    };
    let chosen = chosen.map_or(obs::decision::NO_SECTOR, |s| i64::from(s.raw()));
    if chosen != rec.chosen_sector {
        cmp.diverge(
            "chosen_sector".into(),
            rec.chosen_sector.to_string(),
            chosen.to_string(),
        );
    }
    if fallback != rec.fallback {
        cmp.diverge(
            "fallback".into(),
            rec.fallback.to_string(),
            fallback.to_string(),
        );
    }

    // Kernel intermediates: probe vectors, top-k map cells, normalizer.
    for (name, expected, actual) in [
        ("p_snr", &rec.p_snr, &closure.p_snr),
        ("p_rssi", &rec.p_rssi, &closure.p_rssi),
        ("top_weights", &rec.top_weights, &closure.top_weights),
    ] {
        if expected.len() != actual.len() {
            cmp.diverge(
                format!("{name}.len"),
                expected.len().to_string(),
                actual.len().to_string(),
            );
            continue;
        }
        for (i, (&e, &a)) in expected.iter().zip(actual.iter()).enumerate() {
            cmp.check_f64(format!("{name}[{i}]"), e, a);
        }
    }
    if rec.top_cells != closure.top_cells {
        cmp.diverge(
            "top_cells".into(),
            format!("{:?}", rec.top_cells),
            format!("{:?}", closure.top_cells),
        );
    }
    cmp.check_f64("energy_max".into(), rec.energy_max, closure.energy_max);

    (cmp.divergent, cmp.max_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use css::{CompressiveSelection, CssConfig, DecisionOracle};
    use geom::rng::sub_rng;
    use talon_channel::{Device, Environment, Link, Orientation};

    /// Records a handful of decisions against lab-scenario patterns and
    /// returns (trace, patterns).
    fn recorded_trace(n_sweeps: usize) -> (Trace, SectorPatterns) {
        recorded_trace_with(n_sweeps, EstimatorOptions::default())
    }

    /// [`recorded_trace`] with explicit estimator options (in particular a
    /// non-default kernel path).
    fn recorded_trace_with(n_sweeps: usize, options: EstimatorOptions) -> (Trace, SectorPatterns) {
        let _guard = obs::testing::lock();
        let scenario = EvalScenario::lab(Fidelity::Fast, 7);
        let patterns = scenario.patterns.clone();
        let mut css = CompressiveSelection::new(patterns.clone(), CssConfig::paper_default(), 3);
        css.set_estimator_options(options);
        let link = Link::new(Environment::anechoic(3.0));
        let mut dut = Device::talon(7);
        dut.orientation = Orientation::NEUTRAL;
        let observer = Device::talon(8);
        let rxw = observer.codebook.rx_sector().weights.clone();
        let mut rng = sub_rng(11, "replay-record");

        let mem = std::sync::Arc::new(obs::MemorySink::new());
        obs::set_sink(mem.clone());
        obs::decision::set_context("scenario=lab,fidelity=fast,seed=7");
        for _ in 0..n_sweeps {
            let probes = css.draw_probes();
            let readings = link.sweep(&mut rng, &dut, &probes, &observer);
            css.provide_oracle(DecisionOracle {
                snr_by_sector: probes
                    .iter()
                    .map(|&s| (s, link.true_snr_db(&dut, s, &observer, &rxw)))
                    .collect(),
            });
            let _ = css.select_from_readings(&readings);
        }
        obs::decision::set_context("");
        obs::clear_sink();

        // Round-trip through JSONL so replay sees exactly what a trace
        // file would carry.
        let mut text = String::new();
        for d in mem.take_decisions() {
            text.push_str(&d.to_line().to_json());
            text.push('\n');
        }
        let trace = obs::jsonl::parse_trace(&text).expect("trace parses");
        assert_eq!(trace.decisions.len(), n_sweeps);
        (trace, patterns)
    }

    #[test]
    fn replay_is_bit_exact_at_any_thread_count() {
        let (trace, patterns) = recorded_trace(6);
        let mut reference: Option<ReplayReport> = None;
        for threads in [1usize, 2, 8] {
            let report = replay_trace(
                &trace,
                &ReplayConfig {
                    threads,
                    patterns_override: Some(patterns.clone()),
                    ..ReplayConfig::default()
                },
            );
            assert!(
                report.is_clean(),
                "threads={threads}: {}\n{:?}",
                report.summary(),
                report.divergent,
            );
            assert_eq!(report.replayed, 6);
            assert_eq!(
                report.max_abs_err, 0.0,
                "bit-exact, not just within tolerance"
            );
            if let Some(r) = &reference {
                assert_eq!(report.divergent, r.divergent);
                assert_eq!(report.max_abs_err, r.max_abs_err);
            }
            reference = Some(report);
        }
    }

    #[test]
    fn replay_rebuilds_patterns_from_the_context_string() {
        let (trace, _) = recorded_trace(2);
        // No override: replay must reconstruct the lab scenario's pattern
        // database from `scenario=lab,fidelity=fast,seed=7` alone.
        let report = replay_trace(&trace, &ReplayConfig::default());
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.replayed, 2);
        assert_eq!(report.skipped_no_patterns, 0);
    }

    #[test]
    fn perturbed_inputs_are_reported_as_divergences() {
        let (trace, patterns) = recorded_trace(4);
        let report = replay_trace(
            &trace,
            &ReplayConfig {
                perturb_snr_db: 0.25,
                patterns_override: Some(patterns),
                ..ReplayConfig::default()
            },
        );
        assert!(!report.divergent.is_empty(), "perturbation must be caught");
        assert!(report.max_abs_err > TOLERANCE);
        // The divergence report names concrete fields.
        assert!(report
            .divergent
            .iter()
            .any(|d| d.field.starts_with("p_snr") || d.field == "score"));
    }

    #[test]
    fn wrong_patterns_fail_the_digest_check_without_comparing() {
        let (trace, _) = recorded_trace(2);
        let other = EvalScenario::lab(Fidelity::Fast, 99).patterns;
        let report = replay_trace(
            &trace,
            &ReplayConfig {
                patterns_override: Some(other),
                ..ReplayConfig::default()
            },
        );
        assert_eq!(report.digest_mismatches, 2);
        assert_eq!(report.replayed, 0);
        assert!(!report.is_clean());
        assert!(report
            .divergent
            .iter()
            .all(|d| d.field == "patterns_digest"));
    }

    #[test]
    fn non_replayable_records_are_skipped() {
        let mut rec = DecisionRecord::new("sls.iss");
        rec.push_probe(3, Some((10.0, -60.0)));
        let trace = Trace {
            decisions: vec![rec],
            ..Trace::default()
        };
        let report = replay_trace(&trace, &ReplayConfig::default());
        assert_eq!(report.skipped_non_replayable, 1);
        assert_eq!(report.replayed, 0);
        assert!(
            report.is_clean(),
            "skipping producer-marked records is fine"
        );
    }

    #[test]
    fn quantized_records_replay_through_their_recorded_kernel_path() {
        // Decisions made on the f32 / q15 paths stamp that path into the
        // record; replay re-executes the *same* path, so reproduction is
        // bit-exact even though the path itself is only equivalent to the
        // f64 reference within its documented tolerance.
        for (path, stamp) in [(KernelPath::F32, "f32"), (KernelPath::Q15, "q15")] {
            let options = EstimatorOptions {
                kernel_path: path,
                ..EstimatorOptions::default()
            };
            let (trace, patterns) = recorded_trace_with(4, options);
            assert!(
                trace.decisions.iter().all(|d| d.kernel_path == stamp),
                "{path:?}: records carry the kernel path"
            );
            for threads in [1usize, 2] {
                let report = replay_trace(
                    &trace,
                    &ReplayConfig {
                        threads,
                        patterns_override: Some(patterns.clone()),
                        ..ReplayConfig::default()
                    },
                );
                assert!(
                    report.is_clean(),
                    "{path:?} threads={threads}: {}\n{:?}",
                    report.summary(),
                    report.divergent,
                );
                assert_eq!(report.replayed, 4);
                assert_eq!(report.max_abs_err, 0.0, "{path:?}: same path, same bits");
            }
        }
    }

    #[test]
    fn unknown_kernel_path_is_skipped_not_guessed() {
        // A record stamped by a future kernel path must not be silently
        // replayed through some other arithmetic: it is counted as
        // non-replayable instead.
        let (mut trace, patterns) = recorded_trace(2);
        trace.decisions[0].kernel_path = "f128".to_string();
        let report = replay_trace(
            &trace,
            &ReplayConfig {
                patterns_override: Some(patterns),
                ..ReplayConfig::default()
            },
        );
        assert_eq!(report.skipped_non_replayable, 1);
        assert_eq!(report.replayed, 1);
        assert!(report.is_clean());
    }

    #[test]
    fn context_parsing_handles_order_and_unknown_keys() {
        assert_eq!(
            parse_context("seed=42,scenario=lab,fidelity=paper,extra=x"),
            Some(("lab".into(), Fidelity::Paper, 42))
        );
        assert_eq!(parse_context(""), None);
        assert_eq!(parse_context("fidelity=fast"), None, "scenario required");
        assert_eq!(parse_context("scenario=lab,fidelity=warp"), None);
    }
}
