//! Extension experiments behind the §7 discussion (not figures of the
//! paper, but quantifications of its claims).
//!
//! * [`dense_comparison`] — `ext-dense`: training airtime and aggregate
//!   goodput vs number of node pairs, SSW vs CSS ("each sector sweep …
//!   pollutes the whole mm-wave channel").
//! * [`tracking_comparison`] — `ext-tracking`: achieved rate over time for
//!   a rotating, occasionally blocked link when both policies spend the
//!   same airtime budget on training ("the shorter the sweeping time, the
//!   more often a sweep can be performed").

use chamber::SectorPatterns;
use netsim::dense::{dense_deployment, DenseConfig, DenseResult};
use netsim::policy::TrainingPolicy;
use netsim::tracking::{tracking_run, TrackingConfig, TrackingResult};

/// Runs the dense-deployment experiment for both policies.
pub fn dense_comparison(
    config: &DenseConfig,
    patterns: &SectorPatterns,
    css_probes: usize,
    seed: u64,
) -> (DenseResult, DenseResult) {
    let ssw = dense_deployment(config, patterns, |_, _| TrainingPolicy::ssw(), seed);
    let css = dense_deployment(
        config,
        patterns,
        |p, s| TrainingPolicy::css(p.clone(), css_probes, s),
        seed,
    );
    (ssw, css)
}

/// Runs the tracking experiment for both policies at equal airtime.
pub fn tracking_comparison(
    config: &TrackingConfig,
    patterns: &SectorPatterns,
    css_probes: usize,
    seed: u64,
) -> (TrackingResult, TrackingResult) {
    let ssw = tracking_run(config, TrainingPolicy::ssw(), seed);
    let css = tracking_run(
        config,
        TrainingPolicy::css(patterns.clone(), css_probes, seed),
        seed,
    );
    (ssw, css)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EvalScenario, Fidelity};

    #[test]
    fn both_extension_experiments_run_and_favour_css() {
        let s = EvalScenario::conference_room(Fidelity::Fast, 1100);
        let dense_cfg = DenseConfig {
            pair_counts: vec![4, 32],
            ..DenseConfig::default()
        };
        let (ssw, css) = dense_comparison(&dense_cfg, &s.patterns, 14, 1100);
        assert_eq!(ssw.rows.len(), 2);
        assert!(css.rows[1].training_airtime < ssw.rows[1].training_airtime);

        let tracking_cfg = TrackingConfig {
            horizon_s: 5.0,
            sample_step_s: 0.05,
            ..TrackingConfig::default()
        };
        let (ssw, css) = tracking_comparison(&tracking_cfg, &s.patterns, 14, 1100);
        assert!(css.trainings > ssw.trainings);
        assert!(css.mean_gbps > 0.0);
    }
}
