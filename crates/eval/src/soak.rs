//! Million-decision soak: record a trace at daemon scale, replay it
//! bit-exactly, and measure what the trace costs.
//!
//! The paper's evaluation discipline — record real sweeps once, replay
//! them through the estimator offline — only works at `talond` scale if
//! the trace pipeline holds up under a decision *firehose*: millions of
//! [`obs::DecisionRecord`]s streamed to disk without blowing memory,
//! read back without slurping the file, and re-executed bit-exactly on
//! any thread count. [`run_soak`] exercises exactly that loop end to end:
//!
//! 1. **Record** `decisions` fixed-seed CSS selections through the real
//!    sink path into a binary trace ([`obs::BinSink`]).
//! 2. **Account**: stream the trace back and price every record at the
//!    exact bytes [`obs::JsonlSink`] would have written, yielding the
//!    compression ratio (the codec's reason to exist — the acceptance
//!    floor is 5×).
//! 3. **Replay** the trace at each requested thread count through a
//!    bounded-memory streaming [`ReplaySession`] — frame decode runs on
//!    its own pipeline thread so the next chunk decodes while workers
//!    replay the current one — asserting every decision reproduces
//!    bit-exactly (`max_abs_err == 0`) and that all thread counts (and
//!    an inline-decode baseline pass) agree.
//! 4. **Bound RSS**: the process peak (`VmHWM`) must stay under
//!    [`RSS_CEILING_MB`] — proof the reader streams instead of
//!    materializing the trace.
//!
//! `talon soak` wires this to the CLI and writes `BENCH_trace.json`;
//! CI runs `talon soak --smoke --check BENCH_trace.json` as a gate.

use crate::replay::{ReplayConfig, ReplayReport, ReplaySession};
use crate::scenario::{EvalScenario, Fidelity};
use css::{CompressiveSelection, CssConfig};
use geom::rng::sub_rng;
use obs::binfmt::FileBinReader;
use obs::{BinSink, TraceRecord};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;
use talon_channel::{Device, Environment, Link, Orientation};

/// Decisions in a full soak run (the acceptance floor is 1M).
pub const FULL_DECISIONS: u64 = 1_000_000;

/// Decisions in a `--smoke` run: enough to exercise every phase and the
/// steady-state compression ratio, small enough for a CI gate.
pub const SMOKE_DECISIONS: u64 = 20_000;

/// Process peak-RSS ceiling. A million decisions are ~600 MB as in-memory
/// records; staying an order of magnitude under that is only possible if
/// both the writer and every replay pass actually stream.
pub const RSS_CEILING_MB: f64 = 512.0;

/// Decisions per replay chunk: bounds replay memory at a few MB while
/// keeping the parallel fan-out fed.
const CHUNK: usize = 8 * 1024;

/// Chunks the decode thread may run ahead of the replay workers. Depth 2
/// double-buffers (decode chunk N+1 while N replays) without letting a
/// fast decoder pile decoded records up in memory.
const PIPELINE_DEPTH: usize = 2;

/// What to soak.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Decision records to record and replay.
    pub decisions: u64,
    /// Thread counts for the replay determinism sweep.
    pub threads: Vec<usize>,
    /// Seed for the whole fixed-seed load.
    pub seed: u64,
    /// Where to leave the recorded trace; `None` records to a temp file
    /// and deletes it afterwards.
    pub keep: Option<PathBuf>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            decisions: FULL_DECISIONS,
            threads: vec![1, 2, 8],
            seed: 42,
            keep: None,
        }
    }
}

/// One replay pass's throughput.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayThroughput {
    /// Worker threads the pass fanned out over.
    pub threads: usize,
    /// Decisions re-executed per second, end to end (decode + replay).
    pub per_s: f64,
}

/// Everything a soak run measured. All replay assertions have already
/// passed when one of these comes back (violations are `Err`s).
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Decision records recorded and replayed.
    pub decisions: u64,
    /// Span/mark/anomaly events recorded alongside them.
    pub events: u64,
    /// Binary trace size on disk.
    pub trace_bytes: u64,
    /// Binary bytes per decision (whole file / decisions — events and
    /// the closing snapshot ride along, as they do in production).
    pub bytes_per_decision: f64,
    /// What the identical trace costs as JSONL, priced record-by-record
    /// at the exact bytes `JsonlSink` writes.
    pub jsonl_bytes: u64,
    /// JSONL bytes per decision.
    pub jsonl_bytes_per_decision: f64,
    /// `jsonl_bytes / trace_bytes` — the codec's shrink factor.
    pub compression_ratio: f64,
    /// Recording wall time, seconds.
    pub record_s: f64,
    /// Decisions recorded per second (probe draw + sweep + selection +
    /// trace write — the full live-path cost).
    pub record_per_s: f64,
    /// One entry per requested thread count, in order. These passes
    /// decode on a dedicated pipeline thread (see [`PIPELINE_DEPTH`]).
    pub replay: Vec<ReplayThroughput>,
    /// Throughput of a single-threaded pass that decodes *inline* on the
    /// coordinating thread — the pre-pipeline baseline, kept as a
    /// measured reference for the decode/replay overlap gain.
    pub replay_inline_1t_per_s: f64,
    /// Process peak RSS (`VmHWM`) after all passes, MB.
    pub rss_peak_mb: f64,
    /// Largest |recorded − recomputed| over every compared output in
    /// every pass. Bit-exact replay means exactly 0.
    pub max_abs_err: f64,
}

/// Parses `/proc/self/status` for peak RSS in MB (0.0 where the proc
/// filesystem is unavailable — the ceiling check is skipped then).
pub fn rss_peak_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// The parts of a [`ReplayReport`] that must agree across thread counts.
type DeterminismKey = (usize, usize, usize, u64, String);

fn determinism_key(report: &ReplayReport) -> DeterminismKey {
    (
        report.replayed,
        report.skipped_non_replayable,
        report.digest_mismatches,
        report.max_abs_err.to_bits(),
        format!("{:?}", report.divergent),
    )
}

/// Records `config.decisions` decisions into a binary trace at `path`
/// through the installed-sink hot path, exactly as `talond` would.
fn record_phase(config: &SoakConfig, path: &Path) -> Result<(EvalScenario, f64), String> {
    let scenario = EvalScenario::lab(Fidelity::Fast, config.seed);
    let mut css = CompressiveSelection::new(
        scenario.patterns.clone(),
        CssConfig::paper_default(),
        config.seed,
    );
    let link = Link::new(Environment::anechoic(3.0));
    let mut dut = Device::talon(config.seed);
    dut.orientation = Orientation::NEUTRAL;
    let observer = Device::talon(config.seed + 1);
    let mut rng = sub_rng(config.seed, "soak-record");

    let sink = std::sync::Arc::new(
        BinSink::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?,
    );
    obs::set_sink(sink.clone());
    obs::decision::set_context(&format!("scenario=lab,fidelity=fast,seed={}", config.seed));
    let start = Instant::now();
    for _ in 0..config.decisions {
        let probes = css.draw_probes();
        let readings = link.sweep(&mut rng, &dut, &probes, &observer);
        let _ = css.select_from_readings(&readings);
    }
    let record_s = start.elapsed().as_secs_f64();
    use obs::EventSink;
    sink.write_snapshot(&obs::global().snapshot());
    obs::decision::set_context("");
    obs::clear_sink();
    Ok((scenario, record_s))
}

/// Streams the trace once, checking integrity and pricing every record at
/// its exact JSONL cost. Returns (decisions, events, jsonl_bytes).
fn account_phase(config: &SoakConfig, path: &Path) -> Result<(u64, u64, u64), String> {
    let mut reader = FileBinReader::open(path)?;
    let (mut decisions, mut events, mut jsonl_bytes) = (0u64, 0u64, 0u64);
    let ts = obs::now_us();
    while let Some(record) = reader.next_record()? {
        match &record {
            TraceRecord::Decision(_) => decisions += 1,
            TraceRecord::Event(_) => events += 1,
            TraceRecord::Snapshot(_) => {}
        }
        // +1: the newline JsonlSink appends per line.
        jsonl_bytes += obs::sink::record_line(&record, ts).to_json().len() as u64 + 1;
    }
    if reader.skipped() > 0 {
        return Err(format!(
            "freshly recorded trace has {} damaged frame(s)",
            reader.skipped()
        ));
    }
    if decisions != config.decisions {
        return Err(format!(
            "recorded {} decisions but read back {decisions}",
            config.decisions
        ));
    }
    Ok((decisions, events, jsonl_bytes))
}

/// Streams the trace through a bounded-memory replay at `threads`,
/// asserting a clean bit-exact reproduction.
///
/// With `pipelined` set, frame decode moves off the coordinating thread:
/// a dedicated decoder fills the next [`CHUNK`]-record chunk while the
/// replay workers re-execute the current one, handing chunks over a
/// bounded channel (depth [`PIPELINE_DEPTH`], so memory stays bounded
/// even if decode outruns replay). Chunk boundaries are identical in
/// both modes, so the report cannot depend on the mode — only the wall
/// clock can.
fn replay_phase(
    path: &Path,
    scenario: &EvalScenario,
    threads: usize,
    pipelined: bool,
) -> Result<(ReplayReport, f64), String> {
    let start = Instant::now();
    let mut session = ReplaySession::new(ReplayConfig {
        threads,
        perturb_snr_db: 0.0,
        patterns_override: Some(scenario.patterns.clone()),
    });
    if pipelined {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<obs::DecisionRecord>>(PIPELINE_DEPTH);
        let decode_err = std::thread::scope(|scope| {
            let decoder = scope.spawn(move || -> Result<(), String> {
                let mut reader = FileBinReader::open(path)?;
                let mut chunk = Vec::with_capacity(CHUNK);
                while let Some(record) = reader.next_record()? {
                    if let TraceRecord::Decision(d) = record {
                        chunk.push(*d);
                        if chunk.len() == CHUNK
                            && tx
                                .send(std::mem::replace(&mut chunk, Vec::with_capacity(CHUNK)))
                                .is_err()
                        {
                            // Receiver gone: the replay side bailed first.
                            return Ok(());
                        }
                    }
                }
                tx.send(chunk).ok();
                Ok(())
            });
            for chunk in rx {
                session.replay_chunk(&chunk);
            }
            decoder.join().expect("decode thread joins").err()
        });
        if let Some(e) = decode_err {
            return Err(e);
        }
    } else {
        let mut reader = FileBinReader::open(path)?;
        let mut chunk = Vec::with_capacity(CHUNK);
        while let Some(record) = reader.next_record()? {
            if let TraceRecord::Decision(d) = record {
                chunk.push(*d);
                if chunk.len() == CHUNK {
                    session.replay_chunk(&chunk);
                    chunk.clear();
                }
            }
        }
        session.replay_chunk(&chunk);
    }
    let report = session.finish();
    let elapsed = start.elapsed().as_secs_f64();
    if !report.is_clean() {
        let first = report.divergent.first();
        return Err(format!(
            "replay at {threads} thread(s) diverged: {}{}",
            report.summary(),
            first.map_or(String::new(), |d| format!("; first: {d:?}")),
        ));
    }
    if report.max_abs_err != 0.0 {
        return Err(format!(
            "replay at {threads} thread(s) within tolerance but not bit-exact: \
             max |err| {:.3e}",
            report.max_abs_err
        ));
    }
    Ok((report, elapsed))
}

/// Runs the full soak: record, account, replay at every thread count,
/// bound RSS. `progress` receives one line per completed phase.
pub fn run_soak(config: &SoakConfig, mut progress: impl FnMut(&str)) -> Result<SoakReport, String> {
    if config.decisions == 0 {
        return Err("soak needs at least one decision".into());
    }
    let temp;
    let path: &Path = match &config.keep {
        Some(p) => p,
        None => {
            temp = std::env::temp_dir().join(format!("talon-soak-{}.bin", std::process::id()));
            &temp
        }
    };
    let cleanup = config.keep.is_none();
    let result = (|| {
        let (scenario, record_s) = record_phase(config, path)?;
        let trace_bytes = std::fs::metadata(path)
            .map_err(|e| format!("cannot stat {}: {e}", path.display()))?
            .len();
        progress(&format!(
            "recorded {} decisions in {record_s:.1}s ({:.0}/s, {trace_bytes} bytes)",
            config.decisions,
            config.decisions as f64 / record_s
        ));

        let (decisions, events, jsonl_bytes) = account_phase(config, path)?;
        let compression_ratio = jsonl_bytes as f64 / trace_bytes as f64;
        progress(&format!(
            "accounted: {:.1} B/decision binary vs {:.1} B/decision JSONL ({compression_ratio:.2}× smaller)",
            trace_bytes as f64 / decisions as f64,
            jsonl_bytes as f64 / decisions as f64
        ));

        // Pre-pipeline baseline: decode inline on the coordinating
        // thread at 1 replay thread. Its outcome seeds the determinism
        // reference, so the pipelined passes below also prove that
        // moving decode off-thread changed nothing but the wall clock.
        let (inline_report, inline_elapsed) = replay_phase(path, &scenario, 1, false)?;
        let mut max_abs_err = inline_report.max_abs_err;
        let mut reference: Option<(String, DeterminismKey)> =
            Some(("1 (inline decode)".into(), determinism_key(&inline_report)));
        let replay_inline_1t_per_s = decisions as f64 / inline_elapsed;
        progress(&format!(
            "replayed {decisions} decisions at 1 thread (inline decode) in \
             {inline_elapsed:.1}s ({replay_inline_1t_per_s:.0}/s, bit-exact)"
        ));

        let mut replay = Vec::new();
        for &threads in &config.threads {
            let (report, elapsed) = replay_phase(path, &scenario, threads, true)?;
            max_abs_err = max_abs_err.max(report.max_abs_err);
            let key = determinism_key(&report);
            if let Some((ref_threads, ref_key)) = &reference {
                if *ref_key != key {
                    return Err(format!(
                        "replay outcome differs between {ref_threads} and {threads} thread(s): \
                         {ref_key:?} vs {key:?}"
                    ));
                }
            } else {
                reference = Some((threads.to_string(), key));
            }
            let per_s = decisions as f64 / elapsed;
            progress(&format!(
                "replayed {decisions} decisions at {threads} thread(s) in {elapsed:.1}s \
                 ({per_s:.0}/s, pipelined decode, bit-exact)"
            ));
            replay.push(ReplayThroughput { threads, per_s });
        }

        let rss = rss_peak_mb();
        if rss > RSS_CEILING_MB {
            return Err(format!(
                "peak RSS {rss:.0} MB exceeds the {RSS_CEILING_MB:.0} MB streaming ceiling"
            ));
        }
        Ok(SoakReport {
            decisions,
            events,
            trace_bytes,
            bytes_per_decision: trace_bytes as f64 / decisions as f64,
            jsonl_bytes,
            jsonl_bytes_per_decision: jsonl_bytes as f64 / decisions as f64,
            compression_ratio,
            record_s,
            record_per_s: decisions as f64 / record_s,
            replay,
            replay_inline_1t_per_s,
            rss_peak_mb: rss,
            max_abs_err,
        })
    })();
    if cleanup {
        std::fs::remove_file(path).ok();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_records_replays_and_accounts() {
        let _guard = obs::testing::lock();
        let dir = std::env::temp_dir().join(format!("talon-soak-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let keep = dir.join("soak.bin");
        let config = SoakConfig {
            decisions: 40,
            threads: vec![1, 2, 8],
            seed: 7,
            keep: Some(keep.clone()),
        };
        let mut lines = Vec::new();
        let report = run_soak(&config, |line| lines.push(line.to_string())).expect("soak passes");
        assert_eq!(report.decisions, 40);
        assert_eq!(report.max_abs_err, 0.0);
        assert_eq!(report.replay.len(), 3);
        assert!(report.replay_inline_1t_per_s > 0.0);
        assert!(report.trace_bytes > 0);
        assert!(report.jsonl_bytes > report.trace_bytes);
        assert!(report.compression_ratio > 1.0);
        assert!(lines.len() >= 4, "one progress line per phase: {lines:?}");
        // The kept trace is a valid binary trace replayable on its own.
        assert!(obs::binfmt::sniff(&keep).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rss_peak_is_readable_on_linux() {
        let rss = rss_peak_mb();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0.0, "VmHWM parses to a positive MB figure");
        }
    }
}
