//! Fig. 9 — SNR loss vs number of probing sectors.
//!
//! "We additionally investigate the loss in SNR achieved by compressive
//! sector selection and the sector sweep in comparison to the optimal
//! achievable SNR" (§6.3). The loss of a selection is the noise-free SNR
//! of the best sector minus the noise-free SNR of the selected sector,
//! averaged over all evaluated directions. The stock sweep loses ≈ 0.5 dB
//! (noise occasionally crowns the wrong sector); CSS starts around 2.5 dB
//! at 6 probes and crosses below the sweep at ≈ 14.
//!
//! The CSS side runs on the [`crate::engine`]: one work unit per
//! `(M, sweep)` cell with an index-derived RNG, so the figure is
//! bit-identical for any thread count.

use crate::engine;
use crate::scenario::{random_subset, RecordedDataset};
use chamber::SectorPatterns;
use css::estimator::CorrelationMode;
use css::selection::{CompressiveSelection, CssConfig};
use css::strategy::ProbeStrategy;
use geom::rng::sub_rng_indexed;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy};
use serde::Serialize;

/// The Fig. 9 series.
#[derive(Debug, Clone, Serialize)]
pub struct SnrLossResult {
    /// Scenario name.
    pub scenario: String,
    /// Mean SNR loss of the stock sweep, dB (constant in `M`).
    pub ssw_loss_db: f64,
    /// `(probes, mean loss dB)` pairs for CSS.
    pub css: Vec<(usize, f64)>,
}

impl SnrLossResult {
    /// Smallest probe count at which CSS's loss drops to (or below) the
    /// stock sweep's (the paper reports 14).
    pub fn crossover(&self) -> Option<usize> {
        self.css
            .iter()
            .find(|&&(_, l)| l <= self.ssw_loss_db)
            .map(|&(m, _)| m)
    }
}

/// Runs the Fig. 9 analysis on [`engine::default_threads`] threads.
pub fn snr_loss(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    m_values: &[usize],
    seed: u64,
) -> SnrLossResult {
    snr_loss_par(data, patterns, m_values, seed, engine::default_threads())
}

/// [`snr_loss`] with an explicit thread count. The result does not depend
/// on `threads`.
pub fn snr_loss_par(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    m_values: &[usize],
    seed: u64,
    threads: usize,
) -> SnrLossResult {
    // Stock sweep loss.
    let mut ssw_losses = Vec::new();
    for pos in &data.positions {
        let (_, opt_snr) = pos.optimal();
        for sweep in &pos.sweeps {
            if let Some(sel) = MaxSnrPolicy.select(sweep) {
                if let Some(snr) = pos.true_snr_of(sel) {
                    ssw_losses.push(opt_snr - snr);
                }
            }
        }
    }
    let ssw_loss_db = geom::stats::mean(&ssw_losses).unwrap_or(f64::NAN);

    // CSS loss per probe count, one work unit per (m, sweep) cell. The
    // selection pipeline instance is per-thread worker state (its RNG only
    // drives probe draws, which the replay path does not use — subsets come
    // from the unit-keyed stream below).
    let sweeps: Vec<_> = data
        .positions
        .iter()
        .flat_map(|pos| {
            let opt_snr = pos.optimal().1;
            pos.sweeps.iter().map(move |sweep| (pos, opt_snr, sweep))
        })
        .collect();
    let units_per_m = sweeps.len();
    let n_units = m_values.len() * units_per_m;
    let losses: Vec<Option<f64>> = engine::par_map(
        n_units,
        threads,
        || {
            CompressiveSelection::new(
                patterns.clone(),
                CssConfig {
                    num_probes: 0, // replay path; per-unit m sets the subset size
                    mode: CorrelationMode::JointSnrRssi,
                    strategy: ProbeStrategy::UniformRandom,
                },
                seed,
            )
        },
        |css, unit| {
            let m = m_values[unit / units_per_m];
            let (pos, opt_snr, sweep) = sweeps[unit % units_per_m];
            let mut rng = sub_rng_indexed(seed, "fig9-subsets", unit as u64);
            let subset = random_subset(&mut rng, sweep, m);
            css.select_from_readings(&subset)
                .and_then(|sel| pos.true_snr_of(sel))
                .map(|snr| opt_snr - snr)
        },
    );
    let css_rows = m_values
        .iter()
        .enumerate()
        .map(|(mi, &m)| {
            let cell: Vec<f64> = losses[mi * units_per_m..(mi + 1) * units_per_m]
                .iter()
                .flatten()
                .copied()
                .collect();
            (m, geom::stats::mean(&cell).unwrap_or(f64::NAN))
        })
        .collect();
    SnrLossResult {
        scenario: data.scenario.clone(),
        ssw_loss_db,
        css: css_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EvalScenario, Fidelity};

    fn run(seed: u64) -> SnrLossResult {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, seed);
        let data = s.record(seed);
        snr_loss(&data, &s.patterns, &[4, 14, 30], seed)
    }

    #[test]
    fn losses_are_nonnegative() {
        let res = run(301);
        assert!(res.ssw_loss_db >= 0.0, "SSW loss {}", res.ssw_loss_db);
        for &(m, l) in &res.css {
            assert!(l >= 0.0, "CSS loss at {m} probes: {l}");
        }
    }

    #[test]
    fn ssw_loss_is_small() {
        // The stock sweep probes everything; only report noise can mislead
        // it, so its loss must stay around the paper's ≈0.5 dB mark.
        let res = run(302);
        assert!(res.ssw_loss_db < 2.0, "SSW loss {}", res.ssw_loss_db);
    }

    #[test]
    fn css_loss_shrinks_with_probe_count() {
        let res = run(303);
        let l4 = res.css[0].1;
        let l30 = res.css[2].1;
        assert!(l30 <= l4 + 0.3, "loss shrinks: {l4} dB @4 vs {l30} dB @30");
    }

    #[test]
    fn css_with_many_probes_is_competitive() {
        let res = run(304);
        let l30 = res.css[2].1;
        assert!(
            l30 <= res.ssw_loss_db + 1.5,
            "CSS@30 loss {l30} near SSW {}",
            res.ssw_loss_db
        );
    }
}
