//! Fig. 11 — application-layer throughput at −45°, 0° and 45°.
//!
//! The paper measures iPerf3 TCP throughput over 10 s while the devices
//! keep re-training (≈ one sweep per second), averaged "over all selected
//! sectors to take into account the impacts of suboptimal selections"
//! (§6.4). CSS(14) lands at 1.48–1.51 Gbps, a hair above the stock sweep —
//! the stability gain, not a link-budget gain.
//!
//! Our data-plane model: control-PHY probe frames enjoy a large spreading
//! gain that SC-PHY data frames lack, while data frames gain a beamformed
//! receive sector instead of the probes' quasi-omni pattern. The two
//! roughly cancel; `data_boost_db` is the small net difference. The data
//! SNR maps to an 802.11ad single-carrier MCS, and the PHY rate to TCP
//! goodput with the MAC efficiency observed on Talon hardware (≈ 1/3 of
//! the PHY rate).

use crate::scenario::{random_subset, RecordedDataset, RecordedPosition};
use chamber::SectorPatterns;
use css::estimator::CorrelationMode;
use css::selection::{CompressiveSelection, CssConfig};
use css::strategy::ProbeStrategy;
use geom::rng::sub_rng;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy};
use serde::Serialize;
pub use talon_channel::rate::{DataLinkModel, McsEntry, MCS_TABLE};

/// Throughput at one evaluated path direction.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Path direction azimuth (degrees).
    pub azimuth_deg: f64,
    /// Mean TCP goodput with the stock sweep, Gbps.
    pub ssw_gbps: f64,
    /// Mean TCP goodput with CSS(`probes`), Gbps.
    pub css_gbps: f64,
}

/// The Fig. 11 result.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputResult {
    /// Scenario name.
    pub scenario: String,
    /// Probe count used for CSS (paper: 14).
    pub probes: usize,
    /// One row per evaluated azimuth (paper: −45°, 0°, 45°).
    pub rows: Vec<ThroughputRow>,
}

/// Runs the Fig. 11 analysis at the given azimuth directions.
pub fn throughput(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    azimuths_deg: &[f64],
    probes: usize,
    model: DataLinkModel,
    seed: u64,
) -> ThroughputResult {
    let mut rng = sub_rng(seed, "fig11-subsets");
    let mut css = CompressiveSelection::new(
        patterns.clone(),
        CssConfig {
            num_probes: probes,
            mode: CorrelationMode::JointSnrRssi,
            strategy: ProbeStrategy::UniformRandom,
        },
        seed,
    );
    let mut rows = Vec::with_capacity(azimuths_deg.len());
    for &az in azimuths_deg {
        // The recorded position closest to the requested azimuth.
        let pos = nearest_position(data, az);
        let mut ssw_rates = Vec::new();
        let mut css_rates = Vec::new();
        // Each sweep is one training event of the 10 s transfer; the rate
        // until the next training is set by the selected sector.
        for sweep in &pos.sweeps {
            if let Some(sel) = MaxSnrPolicy.select(sweep) {
                if let Some(snr) = pos.true_snr_of(sel) {
                    ssw_rates.push(model.tcp_gbps(snr));
                }
            }
            let subset = random_subset(&mut rng, sweep, probes);
            if let Some(sel) = css.select_from_readings(&subset) {
                if let Some(snr) = pos.true_snr_of(sel) {
                    css_rates.push(model.tcp_gbps(snr));
                }
            }
        }
        rows.push(ThroughputRow {
            azimuth_deg: az,
            ssw_gbps: geom::stats::mean(&ssw_rates).unwrap_or(0.0),
            css_gbps: geom::stats::mean(&css_rates).unwrap_or(0.0),
        });
    }
    ThroughputResult {
        scenario: data.scenario.clone(),
        probes,
        rows,
    }
}

fn nearest_position(data: &RecordedDataset, az_deg: f64) -> &RecordedPosition {
    data.positions
        .iter()
        .min_by(|a, b| {
            let da = (a.truth.az_deg - az_deg).abs() + a.truth.el_deg.abs();
            let db = (b.truth.az_deg - az_deg).abs() + b.truth.el_deg.abs();
            da.partial_cmp(&db).expect("distances are finite")
        })
        .expect("dataset has positions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EvalScenario, Fidelity};

    #[test]
    fn mcs_mapping_is_monotone() {
        let m = DataLinkModel::default();
        let mut last = 0.0;
        for snr in [-20.0, -10.0, -5.0, 0.0, 3.0, 6.0, 10.0] {
            let r = m.tcp_gbps(snr);
            assert!(r >= last, "rate monotone in SNR");
            last = r;
        }
        // Far below threshold: no link.
        assert_eq!(m.tcp_gbps(-30.0), 0.0);
        // Far above: top MCS.
        assert!((m.tcp_gbps(30.0) - 4.620 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn good_conference_link_reaches_about_1_5_gbps() {
        // ≈ 18.8 dB probe SNR at 6 m + 7 dB boost → MCS 12 →
        // ≈ 1.54 Gbps TCP, the Fig. 11 operating region.
        let m = DataLinkModel::default();
        let r = m.tcp_gbps(18.8);
        assert!((1.2..=1.6).contains(&r), "rate {r} Gbps");
    }

    #[test]
    fn throughput_rows_cover_requested_azimuths() {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 401);
        let data = s.record(401);
        let res = throughput(
            &data,
            &s.patterns,
            &[-45.0, 0.0, 45.0],
            14,
            DataLinkModel::default(),
            401,
        );
        assert_eq!(res.rows.len(), 3);
        for row in &res.rows {
            assert!(
                row.ssw_gbps > 0.5,
                "SSW usable at {}°: {}",
                row.azimuth_deg,
                row.ssw_gbps
            );
            assert!(
                row.css_gbps > 0.5,
                "CSS usable at {}°: {}",
                row.azimuth_deg,
                row.css_gbps
            );
        }
    }

    #[test]
    fn css_throughput_is_competitive_with_ssw() {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 402);
        s.sweeps_per_position = 10;
        let data = s.record(402);
        let res = throughput(
            &data,
            &s.patterns,
            &[0.0],
            14,
            DataLinkModel::default(),
            402,
        );
        let row = &res.rows[0];
        assert!(
            row.css_gbps >= row.ssw_gbps - 0.25,
            "CSS {} vs SSW {}",
            row.css_gbps,
            row.ssw_gbps
        );
    }
}
