//! Experiment harness: reproduces every table and figure of the paper.
//!
//! The evaluation methodology mirrors §6.1: devices perform *full* sector
//! sweeps with the firmware extension recording SNR and RSSI per sector;
//! the analysis then replays those recordings offline, considering "a
//! variable number of random measurements in each sweep" for the
//! compressive selection and the complete sweep for the baseline.
//!
//! | module | reproduces |
//! |---|---|
//! | [`engine`]     | deterministic parallel Monte Carlo execution |
//! | [`scenario`]   | §6.1 setups (lab, conference room) + sweep recording |
//! | [`table1`]     | Table 1 (beacon/sweep CDOWN slots) and §4.1 timings |
//! | [`patterns`]   | Fig. 5 (azimuth cuts) and Fig. 6 (3-D heatmaps) |
//! | [`estimation`] | Fig. 7 (angular error vs number of probes) |
//! | [`stability`]  | Fig. 8 (selection stability vs number of probes) |
//! | [`snr_loss`]   | Fig. 9 (SNR loss vs number of probes) |
//! | [`overhead`]   | Fig. 10 (training time vs number of probes) |
//! | [`throughput`] | Fig. 11 (TCP throughput at −45°/0°/45°) |
//! | [`extensions`] | §7 claims quantified: `ext-dense`, `ext-tracking` |
//! | [`dataset_io`] | archive/reload recorded sweeps for offline re-analysis |
//! | [`replay`]     | trace-driven re-execution of recorded decisions |
//! | [`soak`]       | million-decision record/replay soak with trace-cost metrics |
//! | [`ascii`]      | plain-text table/series rendering for all binaries |
//!
//! Every experiment takes an explicit seed and a fidelity knob
//! ([`scenario::Fidelity`]) so tests run in seconds while the `bench`
//! binaries reproduce the paper-scale sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod dataset_io;
pub mod engine;
pub mod estimation;
pub mod extensions;
pub mod overhead;
pub mod patterns;
pub mod replay;
pub mod scenario;
pub mod snr_loss;
pub mod soak;
pub mod stability;
pub mod table1;
pub mod throughput;

pub use replay::{replay_trace, Divergence, ReplayConfig, ReplayReport, ReplaySession};
pub use scenario::{EvalScenario, Fidelity, RecordedDataset, RecordedPosition};
pub use soak::{run_soak, SoakConfig, SoakReport};
