//! Table 1 and the §4.1 timing audit.
//!
//! Table 1 lists, per CDOWN value, which sector the Talon transmits during
//! a beacon burst and during a sector sweep. The experiment runs the
//! monitor-capture setup of §4.1 (three devices in close proximity: AP,
//! station, monitor) and compares the reconstructed table against the
//! schedules the transmitter used.

use geom::rng::sub_rng;
use mac80211ad::capture::MonitorCapture;
use mac80211ad::schedule::BurstSchedule;
use mac80211ad::timing::{mutual_training_time, BEACON_INTERVAL, SLS_OVERHEAD, SSW_FRAME_TIME};
use serde::Serialize;
use talon_array::SectorId;
use talon_channel::{Device, Environment, Link};

/// The reconstructed Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Observed beacon row: CDOWN 34 → 0.
    pub beacon: Vec<Option<SectorId>>,
    /// Observed sweep row: CDOWN 34 → 0.
    pub sweep: Vec<Option<SectorId>>,
    /// Frames decoded at the monitor.
    pub frames_captured: usize,
    /// Frames transmitted but missed.
    pub frames_missed: usize,
    /// Number of bursts observed.
    pub bursts: usize,
}

/// Runs the Table 1 capture experiment.
pub fn capture_table1(bursts: usize, seed: u64) -> Table1Result {
    // Close proximity (§4.1) so even weak sectors decode eventually.
    let link = Link::new(Environment::anechoic(1.0));
    let ap = Device::talon(seed);
    let monitor = Device::talon(seed.wrapping_add(2));
    let beacon = BurstSchedule::talon_beacon();
    let sweep = BurstSchedule::talon_sweep();
    let mut cap = MonitorCapture::new();
    let mut rng = sub_rng(seed, "table1");
    for _ in 0..bursts {
        cap.observe_burst(&mut rng, &link, &ap, &monitor, &beacon);
        cap.observe_burst(&mut rng, &link, &ap, &monitor, &sweep);
    }
    let (beacon_row, sweep_row) = cap.table_rows(34);
    Table1Result {
        beacon: beacon_row,
        sweep: sweep_row,
        frames_captured: cap.frames_captured,
        frames_missed: cap.frames_missed,
        bursts,
    }
}

/// The §4.1 timing facts, as reported by the timing model.
#[derive(Debug, Clone, Serialize)]
pub struct TimingAudit {
    /// Beacon interval, ms (paper: 102.4).
    pub beacon_interval_ms: f64,
    /// Per-frame sweep time, µs (paper: 18.0).
    pub ssw_frame_us: f64,
    /// Initialization + feedback overhead, µs (paper: 49.1).
    pub overhead_us: f64,
    /// Mutual training with the stock 34-sector sweep, ms (paper: 1.27).
    pub full_training_ms: f64,
}

/// Produces the timing audit.
pub fn timing_audit() -> TimingAudit {
    TimingAudit {
        beacon_interval_ms: BEACON_INTERVAL.as_ms(),
        ssw_frame_us: SSW_FRAME_TIME.as_us(),
        overhead_us: SLS_OVERHEAD.as_us(),
        full_training_ms: mutual_training_time(34).as_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_table_matches_ground_truth_schedules() {
        let res = capture_table1(80, 7);
        let beacon = BurstSchedule::talon_beacon();
        let sweep = BurstSchedule::talon_sweep();
        for (i, cdown) in (0..=34u16).rev().enumerate() {
            // Every *observed* slot must agree with the schedule; strong
            // slots must actually be observed.
            if let Some(obs) = res.beacon[i] {
                assert_eq!(Some(obs), beacon.sector_at(cdown), "beacon CDOWN {cdown}");
            }
            if let Some(obs) = res.sweep[i] {
                assert_eq!(Some(obs), sweep.sector_at(cdown), "sweep CDOWN {cdown}");
            }
        }
        // The paper's unused slots stay empty forever.
        assert_eq!(res.beacon[0], None, "beacon CDOWN 34 unused");
        assert_eq!(res.beacon[2], None, "beacon CDOWN 32 unused");
        assert_eq!(res.beacon[34], None, "beacon CDOWN 0 unused");
        assert_eq!(res.sweep[31], None, "sweep CDOWN 3 unused");
        // Strong slots must be present after 80 bursts.
        assert_eq!(res.beacon[1], Some(SectorId(63)));
        assert_eq!(res.sweep[0], Some(SectorId(1)));
        assert_eq!(res.sweep[34], Some(SectorId(63)));
    }

    #[test]
    fn timing_audit_matches_paper() {
        let t = timing_audit();
        assert_eq!(t.beacon_interval_ms, 102.4);
        assert_eq!(t.ssw_frame_us, 18.0);
        assert_eq!(t.overhead_us, 49.1);
        assert!((t.full_training_ms - 1.27).abs() < 0.005);
    }

    #[test]
    fn capture_has_realistic_miss_rate() {
        let res = capture_table1(40, 8);
        assert!(res.frames_captured > 0);
        assert!(res.frames_missed > 0, "weak sectors drop frames");
        let total = res.frames_captured + res.frames_missed;
        assert!(
            res.frames_captured as f64 / total as f64 > 0.5,
            "most frames decode in close proximity"
        );
    }
}
