//! Figs. 5 and 6 — the measured sector patterns.
//!
//! Fig. 5 shows the azimuth cut (elevation 0°) of all 35 sector patterns;
//! Fig. 6 the spherical heatmaps over azimuth × elevation. These modules
//! run the chamber campaign and produce the per-sector series, plus the
//! qualitative trait summary the paper discusses in §4.4 (which sectors
//! are strongly directional, multi-lobed, wide, or weak).

use chamber::{Campaign, CampaignConfig, SectorPatterns};
use geom::rng::sub_rng;
use geom::sphere::Direction;
use serde::Serialize;
use talon_array::{GainPattern, SectorId};
use talon_channel::{Device, Environment, Link};

/// A full pattern-measurement run: TX patterns plus the RX pattern.
#[derive(Debug, Clone)]
pub struct PatternCampaignResult {
    /// Measured transmit patterns, one per sweep sector.
    pub tx_patterns: SectorPatterns,
    /// Measured quasi-omni receive pattern.
    pub rx_pattern: GainPattern,
}

/// Runs the chamber campaign with the given config (Fig. 5 uses
/// [`CampaignConfig::paper_azimuth_scan`], Fig. 6
/// [`CampaignConfig::paper_3d_scan`]).
pub fn measure_patterns(config: CampaignConfig, seed: u64) -> PatternCampaignResult {
    let link = Link::new(Environment::anechoic(3.0));
    let mut dut = Device::talon(seed);
    let fixed = Device::talon(seed.wrapping_add(1));
    let mut campaign = Campaign::new(config, seed);
    let mut rng = sub_rng(seed, "pattern-campaign");
    let tx_patterns = campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &fixed);
    let rx_pattern = campaign.measure_rx_pattern(&mut rng, &link, &mut dut, &fixed);
    PatternCampaignResult {
        tx_patterns,
        rx_pattern,
    }
}

/// §4.4's qualitative classification of one sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SectorTrait {
    /// One dominant lobe well above the rest of the pattern.
    StrongSingleLobe,
    /// Several comparable lobes.
    MultiLobe,
    /// Broad coverage with little azimuth variation.
    Wide,
    /// Low gain everywhere in the measured space.
    Weak,
}

/// Summary row for one sector.
#[derive(Debug, Clone, Serialize)]
pub struct SectorSummary {
    /// Sector ID.
    pub id: u8,
    /// Peak measured gain, dB.
    pub peak_db: f64,
    /// Direction of the peak.
    pub peak_az_deg: f64,
    /// Elevation of the peak.
    pub peak_el_deg: f64,
    /// Classified trait.
    pub trait_: SectorTrait,
}

/// Classifies every measured sector (the §4.4 discussion, made mechanical).
pub fn classify(patterns: &SectorPatterns) -> Vec<SectorSummary> {
    // Global reference: the strongest peak in the whole codebook.
    let global_peak = patterns
        .sector_ids()
        .iter()
        .map(|&id| patterns.get(id).unwrap().peak().0)
        .fold(f64::NEG_INFINITY, f64::max);
    patterns
        .sector_ids()
        .into_iter()
        .map(|id| {
            let p = patterns.get(id).unwrap();
            let (peak, dir) = p.peak();
            SectorSummary {
                id: id.raw(),
                peak_db: peak,
                peak_az_deg: dir.az_deg,
                peak_el_deg: dir.el_deg,
                trait_: classify_one(p, peak, dir, global_peak),
            }
        })
        .collect()
}

fn classify_one(p: &GainPattern, peak: f64, peak_dir: Direction, global_peak: f64) -> SectorTrait {
    if peak < global_peak - 6.0 {
        return SectorTrait::Weak;
    }
    // Azimuth spread at the peak's elevation row.
    let (_, gains) = p.azimuth_cut(peak_dir.el_deg);
    let above: usize = gains.iter().filter(|&&g| g > peak - 3.0).count();
    let frac_above = above as f64 / gains.len() as f64;
    if frac_above > 0.5 {
        return SectorTrait::Wide;
    }
    // Count separated lobes within 3 dB of the peak: runs of above-threshold
    // samples separated by below-threshold gaps.
    let mut lobes = 0;
    let mut in_lobe = false;
    for &g in &gains {
        if g > peak - 3.0 {
            if !in_lobe {
                lobes += 1;
                in_lobe = true;
            }
        } else {
            in_lobe = false;
        }
    }
    if lobes >= 2 {
        SectorTrait::MultiLobe
    } else {
        SectorTrait::StrongSingleLobe
    }
}

/// Renders one sector's azimuth cut as `(azimuth, gain)` CSV lines
/// (the plottable Fig. 5 series).
pub fn azimuth_cut_csv(patterns: &SectorPatterns, id: SectorId) -> Option<String> {
    let p = patterns.get(id)?;
    let (az, g) = p.azimuth_cut(0.0);
    let mut out = String::from("azimuth_deg,snr_db\n");
    for (a, v) in az.iter().zip(&g) {
        out.push_str(&format!("{a:.2},{v:.3}\n"));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_result() -> PatternCampaignResult {
        measure_patterns(CampaignConfig::coarse(), 501)
    }

    #[test]
    fn campaign_covers_all_sectors_plus_rx() {
        let res = fast_result();
        assert_eq!(res.tx_patterns.len(), 34);
        assert_eq!(res.rx_pattern.grid, *res.tx_patterns.grid());
    }

    #[test]
    fn classification_finds_the_paper_trait_mix() {
        let res = fast_result();
        let summary = classify(&res.tx_patterns);
        assert_eq!(summary.len(), 34);
        let count = |t: SectorTrait| summary.iter().filter(|s| s.trait_ == t).count();
        assert!(
            count(SectorTrait::StrongSingleLobe) >= 10,
            "many directional sectors"
        );
        assert!(
            count(SectorTrait::Weak) >= 1,
            "defective sectors exist (25, 62)"
        );
        // Sector 63 is a strong single lobe near broadside.
        let s63 = summary.iter().find(|s| s.id == 63).unwrap();
        assert_eq!(s63.trait_, SectorTrait::StrongSingleLobe);
        assert!(s63.peak_az_deg.abs() < 12.0);
        // The deliberately defective sectors classify as weak.
        for id in [25u8, 62] {
            let s = summary.iter().find(|s| s.id == id).unwrap();
            assert_eq!(s.trait_, SectorTrait::Weak, "sector {id}");
        }
    }

    #[test]
    fn csv_series_is_well_formed() {
        let res = fast_result();
        let csv = azimuth_cut_csv(&res.tx_patterns, SectorId(8)).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "azimuth_deg,snr_db");
        assert_eq!(lines.len(), 1 + res.tx_patterns.grid().az.len());
        assert!(lines[1].contains(','));
        assert!(azimuth_cut_csv(&res.tx_patterns, SectorId(40)).is_none());
    }
}
