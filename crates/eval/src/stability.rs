//! Fig. 8 — selection stability vs number of probing sectors.
//!
//! "The selection stability represents the time a selection algorithm
//! spends in one particular sector. … For each physical path direction, we
//! identify the sector that is selected most and count the occurrences.
//! This number divided by the total number of evaluated sweeps provides
//! the selection stability" (§6.3). The paper finds the stock sweep stuck
//! at 73.9 % (measurement noise makes similar sectors alternate) while CSS
//! with ≥ 13 probes is more stable, reaching ~94.7 % with all probes.
//!
//! The CSS side runs on the [`crate::engine`]: one work unit per
//! `(M, position)` cell (stability is a per-position statistic) with an
//! index-derived RNG, so the figure is bit-identical for any thread count.

use crate::engine;
use crate::scenario::{random_subset, RecordedDataset};
use chamber::SectorPatterns;
use css::estimator::CorrelationMode;
use css::selection::{CompressiveSelection, CssConfig};
use css::strategy::ProbeStrategy;
use geom::rng::sub_rng_indexed;
use geom::stats::modal_fraction;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy};
use serde::Serialize;
use talon_array::SectorId;

/// The Fig. 8 series.
#[derive(Debug, Clone, Serialize)]
pub struct StabilityResult {
    /// Scenario name.
    pub scenario: String,
    /// Stability of the stock sweep (constant in `M`).
    pub ssw_stability: f64,
    /// `(probes, stability)` pairs for CSS.
    pub css: Vec<(usize, f64)>,
}

impl StabilityResult {
    /// Smallest probe count at which CSS meets or beats the stock sweep
    /// (the paper reports 13).
    pub fn crossover(&self) -> Option<usize> {
        self.css
            .iter()
            .find(|&&(_, s)| s >= self.ssw_stability)
            .map(|&(m, _)| m)
    }
}

/// Runs the Fig. 8 analysis on [`engine::default_threads`] threads.
pub fn selection_stability(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    m_values: &[usize],
    seed: u64,
) -> StabilityResult {
    selection_stability_par(data, patterns, m_values, seed, engine::default_threads())
}

/// [`selection_stability`] with an explicit thread count. The result does
/// not depend on `threads`.
pub fn selection_stability_par(
    data: &RecordedDataset,
    patterns: &SectorPatterns,
    m_values: &[usize],
    seed: u64,
    threads: usize,
) -> StabilityResult {
    // Stock sweep: argmax per recorded sweep.
    let mut ssw_stabilities = Vec::new();
    for pos in &data.positions {
        let selections: Vec<SectorId> = pos
            .sweeps
            .iter()
            .filter_map(|sweep| MaxSnrPolicy.select(sweep))
            .collect();
        if let Some(s) = modal_fraction(&selections) {
            ssw_stabilities.push(s);
        }
    }
    let ssw_stability = geom::stats::mean(&ssw_stabilities).unwrap_or(0.0);

    // CSS: one work unit per (m, position). The unit's RNG drives the
    // subset draws of all sweeps at that position, in sweep order.
    let units_per_m = data.positions.len();
    let n_units = m_values.len() * units_per_m;
    let stabilities: Vec<Option<f64>> = engine::par_map(
        n_units,
        threads,
        || {
            CompressiveSelection::new(
                patterns.clone(),
                CssConfig {
                    num_probes: 0, // replay path; per-unit m sets the subset size
                    mode: CorrelationMode::JointSnrRssi,
                    strategy: ProbeStrategy::UniformRandom,
                },
                seed,
            )
        },
        |css, unit| {
            let m = m_values[unit / units_per_m];
            let pos = &data.positions[unit % units_per_m];
            let mut rng = sub_rng_indexed(seed, "fig8-subsets", unit as u64);
            let selections: Vec<SectorId> = pos
                .sweeps
                .iter()
                .filter_map(|sweep| {
                    let subset = random_subset(&mut rng, sweep, m);
                    css.select_from_readings(&subset)
                })
                .collect();
            modal_fraction(&selections)
        },
    );
    let css_rows = m_values
        .iter()
        .enumerate()
        .map(|(mi, &m)| {
            let cell: Vec<f64> = stabilities[mi * units_per_m..(mi + 1) * units_per_m]
                .iter()
                .flatten()
                .copied()
                .collect();
            (m, geom::stats::mean(&cell).unwrap_or(0.0))
        })
        .collect();
    StabilityResult {
        scenario: data.scenario.clone(),
        ssw_stability,
        css: css_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{EvalScenario, Fidelity};

    fn run(seed: u64) -> StabilityResult {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, seed);
        // More sweeps per position make the stability statistic meaningful.
        s.sweeps_per_position = 10;
        let data = s.record(seed);
        selection_stability(&data, &s.patterns, &[4, 14, 30], seed)
    }

    #[test]
    fn stabilities_are_probabilities() {
        let res = run(201);
        assert!((0.0..=1.0).contains(&res.ssw_stability));
        for &(_, s) in &res.css {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn ssw_is_not_perfectly_stable() {
        // Measurement noise makes the stock argmax alternate between
        // similar sectors — the very effect the paper quantifies at 73.9 %.
        let res = run(202);
        assert!(
            res.ssw_stability < 0.999,
            "SSW stability {} should show fluctuations",
            res.ssw_stability
        );
        assert!(res.ssw_stability > 0.3, "but not be random either");
    }

    #[test]
    fn css_stability_grows_with_probe_count() {
        let res = run(203);
        let s4 = res.css[0].1;
        let s30 = res.css[2].1;
        assert!(
            s30 >= s4,
            "stability grows with probes: {s4} @4 vs {s30} @30"
        );
    }

    #[test]
    fn css_with_many_probes_beats_ssw() {
        let res = run(204);
        let s30 = res.css[2].1;
        assert!(
            s30 >= res.ssw_stability,
            "CSS@30 ({s30}) at least as stable as SSW ({})",
            res.ssw_stability
        );
    }
}
