//! Thread-count determinism: every `_par` experiment entry point must
//! produce byte-identical results at 1, 2, and 8 threads.
//!
//! The engine guarantees this by keying each work unit's RNG on its flat
//! index and merging chunks in index order (see `eval::engine`); these
//! tests pin the guarantee end-to-end through the three Monte Carlo
//! figures. Results are compared through their full `Debug` rendering,
//! which includes every float exactly.

use eval::estimation::estimation_error_par;
use eval::scenario::{EvalScenario, Fidelity};
use eval::snr_loss::snr_loss_par;
use eval::stability::selection_stability_par;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn estimation_error_is_thread_count_invariant() {
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 901);
    let data = s.record(901);
    let renders: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            format!(
                "{:?}",
                estimation_error_par(&data, &s.patterns, &[6, 14], 2, 901, t)
            )
        })
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

#[test]
fn snr_loss_is_thread_count_invariant() {
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 902);
    let data = s.record(902);
    let renders: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| format!("{:?}", snr_loss_par(&data, &s.patterns, &[4, 14], 902, t)))
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

#[test]
fn selection_stability_is_thread_count_invariant() {
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 903);
    let data = s.record(903);
    let renders: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            format!(
                "{:?}",
                selection_stability_par(&data, &s.patterns, &[4, 14], 903, t)
            )
        })
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}
