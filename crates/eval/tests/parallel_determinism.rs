//! Thread-count determinism: every `_par` experiment entry point must
//! produce byte-identical results at 1, 2, and 8 threads.
//!
//! The engine guarantees this by keying each work unit's RNG on its flat
//! index and merging chunks in index order (see `eval::engine`); these
//! tests pin the guarantee end-to-end through the three Monte Carlo
//! figures. Results are compared through their full `Debug` rendering,
//! which includes every float exactly.

use css::estimator::KernelPath;
use eval::estimation::{estimation_error_batched, estimation_error_par};
use eval::scenario::{EvalScenario, Fidelity};
use eval::snr_loss::snr_loss_par;
use eval::stability::selection_stability_par;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn estimation_error_is_thread_count_invariant() {
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 901);
    let data = s.record(901);
    let renders: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            format!(
                "{:?}",
                estimation_error_par(&data, &s.patterns, &[6, 14], 2, 901, t)
            )
        })
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

#[test]
fn batched_estimation_is_thread_count_invariant_per_precision_mode() {
    // The batched sweep groups EVAL_BATCH consecutive units per
    // BatchEstimator call; batch boundaries depend only on the unit
    // count, never on the thread count, so even the reduced-precision
    // paths (whose arithmetic is the most rounding-sensitive) must be
    // byte-identical at 1, 2, and 8 threads. F64 is covered by
    // `estimation_error_is_thread_count_invariant` above.
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 905);
    let data = s.record(905);
    for path in [KernelPath::F32, KernelPath::Q15] {
        let renders: Vec<String> = THREAD_COUNTS
            .iter()
            .map(|&t| {
                format!(
                    "{:?}",
                    estimation_error_batched(&data, &s.patterns, &[6, 14], 2, 905, t, path)
                )
            })
            .collect();
        assert_eq!(renders[0], renders[1], "{path:?}: 1 vs 2 threads");
        assert_eq!(renders[0], renders[2], "{path:?}: 1 vs 8 threads");
    }
}

#[test]
fn snr_loss_is_thread_count_invariant() {
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 902);
    let data = s.record(902);
    let renders: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| format!("{:?}", snr_loss_par(&data, &s.patterns, &[4, 14], 902, t)))
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

#[test]
fn selection_stability_is_thread_count_invariant() {
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 903);
    let data = s.record(903);
    let renders: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            format!(
                "{:?}",
                selection_stability_par(&data, &s.patterns, &[4, 14], 903, t)
            )
        })
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

/// Captures every trace event emitted during one `estimation_error_par`
/// run at the given thread count.
fn capture_eval_trace(threads: usize) -> Vec<obs::Event> {
    let mut s = EvalScenario::conference_room(Fidelity::Fast, 904);
    let data = s.record(904);
    let _guard = obs::testing::lock();
    let mem = std::sync::Arc::new(obs::MemorySink::new());
    obs::set_sink(mem.clone());
    let _ = estimation_error_par(&data, &s.patterns, &[6, 14], 2, 904, threads);
    obs::clear_sink();
    mem.take()
}

#[test]
fn eval_traces_are_structurally_thread_count_invariant() {
    // Not just results: the *trace* of a parallel eval must be the same
    // tree regardless of worker count. Each work unit gets a reserved
    // trace id on the coordinating thread and its events are captured
    // per-thread and merged in unit-index order, so after normalizing
    // wall-clock values (ts/dur) and remapping trace ids by first
    // appearance, the event streams are identical. The coordinator's own
    // `eval.par_map` span is excluded — its `threads` field differs by
    // construction.
    let renders: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let events: Vec<obs::Event> = capture_eval_trace(t)
                .into_iter()
                .filter(|e| e.stage != "eval.par_map")
                .collect();
            assert!(!events.is_empty(), "{t} threads emitted no unit events");
            format!("{:?}", obs::tree::normalize_structural(&events))
        })
        .collect();
    assert_eq!(renders[0], renders[1], "trace at 1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "trace at 1 vs 8 threads");
}

#[test]
fn profiling_does_not_perturb_results_or_traces() {
    // The sampling profiler must be workload-inert: with a fast sampler
    // running (publishing every span push/pop into the per-thread slots
    // and sampling concurrently), results AND trace structure stay
    // byte-identical at 1, 2 and 8 threads — and identical to what an
    // unprofiled run produces.
    let baseline_results = {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 906);
        let data = s.record(906);
        format!(
            "{:?}",
            estimation_error_par(&data, &s.patterns, &[6, 14], 2, 906, 2)
        )
    };
    let baseline_trace = format!(
        "{:?}",
        obs::tree::normalize_structural(
            &capture_eval_trace(2)
                .into_iter()
                .filter(|e| e.stage != "eval.par_map")
                .collect::<Vec<_>>()
        )
    );
    let profiler = obs::Profiler::start(std::time::Duration::from_micros(200));
    for &t in &THREAD_COUNTS {
        let mut s = EvalScenario::conference_room(Fidelity::Fast, 906);
        let data = s.record(906);
        let render = format!(
            "{:?}",
            estimation_error_par(&data, &s.patterns, &[6, 14], 2, 906, t)
        );
        assert_eq!(render, baseline_results, "results perturbed at {t} threads");
        let trace = format!(
            "{:?}",
            obs::tree::normalize_structural(
                &capture_eval_trace(t)
                    .into_iter()
                    .filter(|e| e.stage != "eval.par_map")
                    .collect::<Vec<_>>()
            )
        );
        assert_eq!(trace, baseline_trace, "trace perturbed at {t} threads");
    }
    // The profiler actually watched the workload, not an idle process.
    assert!(profiler.passes() > 0, "sampler never ran");
    let folded = profiler.folded();
    assert!(
        !folded.is_empty(),
        "sampler captured no stacks from the eval workload"
    );
}

#[test]
fn eval_units_root_their_own_traces() {
    let events = capture_eval_trace(4);
    let trees = obs::tree::build_trees(&events);
    assert!(!trees.is_empty());
    // Every per-unit trace is a single rooted tree (one top-level span per
    // work unit), and ids are unique within each trace.
    for tree in &trees {
        assert_eq!(tree.roots.len(), 1, "trace {} roots", tree.trace_id);
        let mut ids: Vec<u64> = tree.nodes.iter().map(|n| n.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tree.nodes.len(), "duplicate span ids");
    }
}
