//! Property-based tests for the evaluation harness's parsers.

use proptest::prelude::*;

proptest! {
    #[test]
    fn dataset_parser_never_panics(text in ".{0,400}") {
        let _ = eval::dataset_io::from_text(&text);
    }

    #[test]
    fn dataset_parser_never_panics_on_structured_garbage(
        toks in prop::collection::vec("[0-9:.x-]{1,8}", 0..10),
        kind in prop::sample::select(vec!["position", "truesnr", "sweep", "scenario", "bogus"]),
    ) {
        let mut text = String::from("talon-dataset-v1\n");
        text.push_str(kind);
        for t in toks {
            text.push(' ');
            text.push_str(&t);
        }
        text.push('\n');
        let _ = eval::dataset_io::from_text(&text);
    }
}
