//! Mobility tracking with adaptive probe control — the paper's §7 outlook.
//!
//! A device first sits still, then starts rotating (a user walking with a
//! laptop), then stops again. The adaptive controller shrinks the probe
//! budget while the scene is static and snaps it back up when the selected
//! sector starts changing — "in static scenarios, few probes are
//! sufficient to validate the current antenna settings; whenever a node
//! starts moving, the number of probes may increase" (§7).
//!
//! ```text
//! cargo run --release --example mobility_tracking
//! ```

use css::adaptive::{AdaptiveConfig, AdaptiveCss};
use css::selection::{CompressiveSelection, CssConfig};
use geom::rng::sub_rng;
use mac80211ad::sls::FeedbackPolicy;
use mac80211ad::timing::mutual_training_time;
use talon_channel::{Device, Environment, Link, Orientation};

fn main() {
    let seed = 5;
    let mut dut = Device::talon(seed);
    let peer = Device::talon(seed + 1);

    // Measure patterns once.
    let chamber_link = Link::new(Environment::anechoic(3.0));
    let mut campaign = chamber::Campaign::new(chamber::CampaignConfig::coarse(), seed);
    let mut rng = sub_rng(seed, "mobility-campaign");
    let patterns = campaign.measure_tx_patterns(&mut rng, &chamber_link, &mut dut, &peer);

    let css = CompressiveSelection::new(patterns, CssConfig::paper_default(), seed);
    let mut adaptive = AdaptiveCss::new(css, AdaptiveConfig::default());

    let link = Link::new(Environment::lab());
    let mut rng = sub_rng(seed, "mobility-sweeps");
    let sweep_order = dut.codebook.sweep_order();

    // Trajectory: static at -30°, rotate to +30° in 4°/sweep steps, static.
    let mut trajectory: Vec<f64> = vec![-30.0; 8];
    let mut az = -30.0;
    while az < 30.0 {
        az += 4.0;
        trajectory.push(az);
    }
    trajectory.extend(std::iter::repeat_n(30.0, 8));

    println!("sweep |  yaw° | probes | time ms | selected");
    println!("------+-------+--------+---------+---------");
    let mut total_time_ms = 0.0;
    for (i, &yaw) in trajectory.iter().enumerate() {
        dut.orientation = Orientation::new(yaw, 0.0);
        // One training: the DUT sweeps the adaptive subset, the peer's
        // readings drive the selection.
        let probes = adaptive.probe_sectors(&sweep_order);
        let readings = link.sweep(&mut rng, &dut, &probes, &peer);
        let selected = adaptive.select(&readings);
        let t = mutual_training_time(probes.len()).as_ms();
        total_time_ms += t;
        println!(
            "{i:>5} | {yaw:>5.0} | {:>6} | {t:>7.3} | {}",
            probes.len(),
            selected
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    let fixed_time = mutual_training_time(34).as_ms() * trajectory.len() as f64;
    println!(
        "\ntotal training time: {total_time_ms:.1} ms (full sweeps would take {fixed_time:.1} ms — {:.1}x more)",
        fixed_time / total_time_ms
    );
}
