//! Quickstart: compressive sector selection end to end.
//!
//! Builds two Talon-like devices, measures the rotating device's sector
//! patterns in a simulated anechoic chamber, then runs the stock sector
//! sweep and the compressive selection side by side over a conference-room
//! link and prints what each one chose and how long each training took.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use css::selection::{CompressiveSelection, CssConfig};
use geom::rng::sub_rng;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy, SlsRunner};
use talon_array::SectorId;
use talon_channel::{Device, Environment, Link, Orientation, SweepReading};

/// Initiator-side policy for the CSS run: probe a compressive subset of our
/// own sectors, select the peer's sector with the plain argmax (selecting
/// the peer compressively would need the peer's pattern database).
struct CssInitiator<'a>(&'a mut CompressiveSelection);

impl FeedbackPolicy for CssInitiator<'_> {
    fn probe_sectors(&mut self, full_sweep: &[SectorId]) -> Vec<SectorId> {
        self.0.probe_sectors(full_sweep)
    }
    fn select(&mut self, readings: &[SweepReading]) -> Option<SectorId> {
        MaxSnrPolicy.select(readings)
    }
}

fn main() {
    let seed = 2017;

    // Two off-the-shelf devices.
    let mut dut = Device::talon(seed);
    let peer = Device::talon(seed + 1);

    // Step 1 — measure the DUT's sector patterns in the anechoic chamber
    // (the paper's §4 campaign; done once per device model).
    println!("measuring sector patterns in the anechoic chamber …");
    let chamber_link = Link::new(Environment::anechoic(3.0));
    let campaign_cfg = chamber::CampaignConfig {
        grid: geom::sphere::SphericalGrid::new(
            geom::sphere::GridSpec::new(-90.0, 90.0, 3.0),
            geom::sphere::GridSpec::new(0.0, 30.0, 6.0),
        ),
        sweeps_per_position: 8,
        ..chamber::CampaignConfig::coarse()
    };
    let mut campaign = chamber::Campaign::new(campaign_cfg, seed);
    let mut rng = sub_rng(seed, "quickstart-campaign");
    let patterns = campaign.measure_tx_patterns(&mut rng, &chamber_link, &mut dut, &peer);
    println!(
        "  {} sectors measured on a {} point grid",
        patterns.len(),
        patterns.grid().len()
    );

    // Step 2 — deploy in the conference room, rotated 25° off boresight.
    dut.orientation = Orientation::new(-25.0, 0.0);
    let link = Link::new(Environment::conference_room());
    let runner = SlsRunner::new(&link, &dut, &peer);
    let mut rng = sub_rng(seed, "quickstart-sls");

    // Step 3 — stock sector sweep (Eq. 1: probe all 34, take the max).
    let ssw = runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy);
    println!(
        "stock sweep     : sector {} after {:>5.2} ms ({} probes each way)",
        ssw.initiator_tx_sector.expect("SSW selects"),
        ssw.duration.as_ms(),
        ssw.iss_readings.len(),
    );

    // Step 4 — compressive selection with 14 of 34 probes. The DUT probes
    // a random subset of its sectors; the peer estimates the path direction
    // from what it received (Eqs. 2/3/5) and feeds back the best DUT sector
    // in that direction (Eq. 4) — in the real system through the patched
    // firmware's WMI override.
    let mut dut_css = CompressiveSelection::new(patterns.clone(), CssConfig::paper_default(), seed);
    let mut peer_css = CompressiveSelection::new(patterns, CssConfig::paper_default(), seed + 1);
    let css = runner.run(&mut rng, &mut CssInitiator(&mut dut_css), &mut peer_css);
    println!(
        "compressive css: sector {} after {:>5.2} ms ({} probes each way, {:.1}x faster)",
        css.initiator_tx_sector.expect("CSS peer feedback"),
        css.duration.as_ms(),
        css.iss_readings.len(),
        ssw.duration.as_ms() / css.duration.as_ms(),
    );
    if let Some((dir, score)) = peer_css.last_estimate {
        println!("                  estimated departure direction at the DUT: {dir} (correlation {score:.2})");
        println!(
            "                  ground truth: (az 25.00°, el 0.00°) — the DUT is rotated by -25°"
        );
    }

    // Step 5 — score both selections against the noise-free optimum.
    let rxw = peer.codebook.rx_sector().weights.clone();
    let snr_of = |sel: SectorId| link.true_snr_db(&dut, sel, &peer, &rxw);
    let best = dut
        .codebook
        .sweep_order()
        .into_iter()
        .map(snr_of)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("true SNR — optimum: {best:.1} dB");
    println!(
        "          SSW pick: {:.1} dB, CSS pick: {:.1} dB",
        snr_of(ssw.initiator_tx_sector.unwrap()),
        snr_of(css.initiator_tx_sector.unwrap()),
    );
}
