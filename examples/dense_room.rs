//! Dense deployments and blockage tracking — the §7 discussion, simulated.
//!
//! Part 1 sweeps the number of concurrently active node pairs in one room
//! and shows how the stock sweep's training airtime strangles the shared
//! channel while CSS keeps scaling ("each sector sweep … pollutes the
//! whole mm-wave channel in all directions").
//!
//! Part 2 gives both policies the same training airtime budget on a
//! rotating, occasionally blocked link: CSS converts its 2.3× cheaper
//! sweeps into 2.3× fresher selections ("the shorter the sweeping time,
//! the more often a sweep can be performed").
//!
//! ```text
//! cargo run --release --example dense_room
//! ```

use eval::extensions::{dense_comparison, tracking_comparison};
use geom::rng::sub_rng;
use netsim::dense::DenseConfig;
use netsim::tracking::TrackingConfig;
use talon_channel::{Device, Environment, Link};

fn main() {
    let seed = 3;
    println!("building devices and measuring patterns …");
    // A mid-resolution chamber campaign: fine enough that CSS's selection
    // quality matches the stock sweep's (see EXPERIMENTS.md), fast enough
    // for an example.
    let chamber_link = Link::new(Environment::anechoic(3.0));
    let mut dut = Device::talon(seed);
    let peer = Device::talon(seed + 1);
    let cfg = chamber::CampaignConfig {
        grid: geom::sphere::SphericalGrid::new(
            geom::sphere::GridSpec::new(-90.0, 90.0, 3.0),
            geom::sphere::GridSpec::new(0.0, 30.0, 6.0),
        ),
        sweeps_per_position: 8,
        ..chamber::CampaignConfig::coarse()
    };
    let mut campaign = chamber::Campaign::new(cfg, seed);
    let mut rng = sub_rng(seed, "dense-room-campaign");
    let patterns = campaign.measure_tx_patterns(&mut rng, &chamber_link, &mut dut, &peer);

    // --- Part 1: dense deployment -----------------------------------
    let cfg = DenseConfig::default();
    let (ssw, css) = dense_comparison(&cfg, &patterns, 14, seed);
    println!("\npairs | SSW airtime  aggregate | CSS airtime  aggregate");
    println!("------+------------------------+-----------------------");
    for (a, b) in ssw.rows.iter().zip(&css.rows) {
        println!(
            "{:>5} | {:>10.1}%  {:>6.2} Gbps | {:>10.1}%  {:>6.2} Gbps",
            a.pairs,
            100.0 * a.training_airtime,
            a.aggregate_gbps,
            100.0 * b.training_airtime,
            b.aggregate_gbps,
        );
    }
    println!(
        "(each pair re-trains {} times per second; sweeps block the whole channel)",
        cfg.tracking_hz
    );

    // --- Part 2: tracking at equal airtime --------------------------
    // One run is noisy (random blockage, random probe subsets); average a
    // few independent realizations.
    let cfg = TrackingConfig::default();
    let runs = 5;
    let mut agg: Vec<(String, f64, f64, f64, usize, f64)> = Vec::new();
    for r in 0..runs {
        let (ssw, css) = tracking_comparison(&cfg, &patterns, 14, seed + 100 * r);
        for (i, res) in [ssw, css].into_iter().enumerate() {
            if agg.len() <= i {
                agg.push((res.policy.clone(), 0.0, 0.0, 0.0, 0, res.train_interval_s));
            }
            agg[i].1 += res.mean_gbps / runs as f64;
            agg[i].2 += res.outage_fraction / runs as f64;
            agg[i].3 += res.mean_rate_gap_gbps / runs as f64;
            agg[i].4 += res.trainings / runs as usize;
        }
    }
    println!(
        "\ntracking a {}°/s rotation with {:.1}% training airtime, blockage {:.1}/s ({} runs):",
        cfg.rotation_deg_per_s,
        100.0 * cfg.training_budget,
        cfg.blockage.rate_per_s,
        runs,
    );
    for (name, gbps, outage, gap, trainings, interval) in &agg {
        println!(
            "  {:>7}: {:>3} trainings (every {:>4.0} ms) → mean {:.2} Gbps, outage {:>4.1}%, staleness gap {:.2} Gbps",
            name,
            trainings,
            1000.0 * interval,
            gbps,
            100.0 * outage,
            gap,
        );
    }
}
