//! Pattern measurement campaign — the paper's §4 in miniature.
//!
//! Runs the anechoic-chamber campaign over azimuth and elevation, prints
//! the §4.4-style classification of every sector, renders a few spherical
//! heatmaps (Fig. 6), and demonstrates the pattern store round-trip that
//! lets a measured database be published and reloaded.
//!
//! ```text
//! cargo run --release --example pattern_campaign
//! ```

use chamber::{CampaignConfig, SectorPatterns};
use eval::ascii;
use eval::patterns::{classify, measure_patterns};
use talon_array::SectorId;

fn main() {
    let seed = 11;
    // A mid-resolution 3-D scan (the paper's full scan is
    // `CampaignConfig::paper_3d_scan()`; this one keeps the example fast).
    let cfg = CampaignConfig {
        grid: geom::sphere::SphericalGrid::new(
            geom::sphere::GridSpec::new(-90.0, 90.0, 3.6),
            geom::sphere::GridSpec::new(0.0, 32.4, 3.6),
        ),
        sweeps_per_position: 10,
        ..CampaignConfig::coarse()
    };
    println!(
        "measuring {} sectors over a {}x{} grid …",
        34,
        cfg.grid.az.len(),
        cfg.grid.el.len()
    );
    let result = measure_patterns(cfg, seed);

    // §4.4: classify every sector.
    let summary = classify(&result.tx_patterns);
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|s| {
            vec![
                s.id.to_string(),
                format!("{:.1}", s.peak_db),
                format!("{:.0}", s.peak_az_deg),
                format!("{:.0}", s.peak_el_deg),
                format!("{:?}", s.trait_),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii::table(&["sector", "peak dB", "az°", "el°", "trait"], &rows)
    );

    // Fig. 6 flavour: spherical heatmaps of three characteristic sectors.
    let grid = result.tx_patterns.grid().clone();
    for (id, label) in [
        (5u8, "main lobe at high elevation"),
        (26, "wide torus sector"),
        (63, "strong unidirectional beacon sector"),
    ] {
        let p = result.tx_patterns.get(SectorId(id)).unwrap();
        println!("sector {id} — {label}:");
        println!("{}", ascii::heatmap(&p.gain_db, grid.az.len(), -7.0, 12.0));
    }

    // The receive pattern is quasi-omni.
    let (rx_peak, _) = result.rx_pattern.peak();
    println!("RX pattern peak {rx_peak:.1} dB (quasi-omni single-element sector)");

    // Publish + reload the measured database (the paper's published
    // pattern files).
    let text = result.tx_patterns.to_text();
    println!("\nserialized pattern store: {} bytes", text.len());
    let reloaded = SectorPatterns::from_text(&text).expect("round-trips");
    assert_eq!(reloaded, result.tx_patterns);
    println!("round-trip through the text format verified");
}
