//! Offline re-analysis — the paper's §6.1 MATLAB workflow.
//!
//! The paper records full sweeps on the devices and replays them offline,
//! "consider[ing] a variable number of random measurements in each sweep".
//! This example does the same round trip through files: record once,
//! archive dataset and patterns to disk, reload, and sweep the probe count
//! — then re-analyse the *same* recording with the designed low-coherence
//! probing set (§7) without touching a device again.
//!
//! ```text
//! cargo run --release --example offline_reanalysis
//! ```

use eval::scenario::{EvalScenario, Fidelity};
use eval::snr_loss::snr_loss;
use eval::stability::selection_stability;

fn main() {
    let seed = 8;
    let dir = std::env::temp_dir().join("talon-offline-reanalysis");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dataset_path = dir.join("conference.dataset");
    let patterns_path = dir.join("talon.patterns");

    // --- Day 1: record in the conference room and archive everything.
    println!("recording sweeps in the conference room …");
    let mut scenario = EvalScenario::conference_room(Fidelity::Fast, seed);
    scenario.sweeps_per_position = 10;
    let data = scenario.record(seed);
    eval::dataset_io::save(&data, &dataset_path).expect("save dataset");
    scenario
        .patterns
        .save(&patterns_path)
        .expect("save patterns");
    println!(
        "archived {} positions x {} sweeps to {}",
        data.positions.len(),
        data.positions[0].sweeps.len(),
        dataset_path.display()
    );

    // --- Day 2: reload and re-analyse with different probe counts.
    let data = eval::dataset_io::load(&dataset_path)
        .expect("read dataset")
        .expect("parse dataset");
    let patterns = chamber::SectorPatterns::load(&patterns_path)
        .expect("read patterns")
        .expect("parse patterns");
    let ms = [6, 10, 14, 20, 34];
    let stab = selection_stability(&data, &patterns, &ms, seed);
    let loss = snr_loss(&data, &patterns, &ms, seed);
    println!("\nuniform random probing (the paper's default):");
    println!(
        "    M | stability | loss dB   (SSW: {:.3} / {:.2} dB)",
        stab.ssw_stability, loss.ssw_loss_db
    );
    for ((m, s), (_, l)) in stab.css.iter().zip(&loss.css) {
        println!("  {m:>3} | {s:>9.3} | {l:>7.2}");
    }

    // --- Same recording, designed probing set (§7's suggestion).
    let design = css::strategy::design_low_coherence(&patterns);
    println!("\nlow-coherence designed probing (first 8 sectors of the design):");
    println!(
        "  {:?}",
        design.iter().take(8).map(|s| s.raw()).collect::<Vec<_>>()
    );
    use css::selection::{CompressiveSelection, CssConfig};
    use css::strategy::ProbeStrategy;
    use geom::rng::sub_rng;
    use rand::Rng;
    let mut rng = sub_rng(seed, "offline-designed");
    for m in [6usize, 10, 14] {
        let mut css = CompressiveSelection::new(
            patterns.clone(),
            CssConfig {
                num_probes: m,
                strategy: ProbeStrategy::LowCoherence(design.clone()),
                ..CssConfig::paper_default()
            },
            seed,
        );
        let mut losses = Vec::new();
        for pos in &data.positions {
            let (_, opt) = pos.optimal();
            for sweep in &pos.sweeps {
                let probes = css.draw_probes();
                let subset: Vec<_> = sweep
                    .iter()
                    .filter(|r| probes.contains(&r.sector))
                    .copied()
                    .collect();
                let _ = rng.gen::<u32>();
                if let Some(sel) = css.select_from_readings(&subset) {
                    if let Some(snr) = pos.true_snr_of(sel) {
                        losses.push(opt - snr);
                    }
                }
            }
        }
        println!(
            "  M={m:>2}: loss {:.2} dB",
            geom::stats::mean(&losses).unwrap_or(f64::NAN)
        );
    }
    println!("\n(same recording, zero additional air time — the point of offline analysis)");
}
