//! Firmware integration: the paper's §3 system, end to end.
//!
//! This example reproduces the deployment story of the paper: a Talon
//! router whose QCA9500 firmware has been Nexmon-patched so that (a) every
//! received SSW probe's SNR/RSSI lands in a ring buffer readable from user
//! space and (b) a WMI command overrides the sector written into SSW
//! feedback fields. A user-space agent thread reads the measurements, runs
//! the compressive selection, and arms the override — while the MAC keeps
//! running sector sweeps.
//!
//! ```text
//! cargo run --release --example firmware_integration
//! ```

use css::selection::{CompressiveSelection, CssConfig};
use geom::rng::sub_rng;
use mac80211ad::sls::{MaxSnrPolicy, SlsRunner};
use std::sync::Arc;
use talon_channel::{Device, Environment, Link, Orientation, SweepReading};
use wil6210::{Qca9500Firmware, Wil6210Driver, WmiCommand, WmiReply};

fn main() {
    let seed = 7;

    // --- Flash the patched firmware (the paper's §3.2 jailbreak) --------
    let firmware = Arc::new(Qca9500Firmware::stock());
    println!(
        "stock firmware: export patch active = {}",
        firmware.export_patch_active()
    );
    firmware
        .flash_patches()
        .expect("patching via high-address mappings succeeds");
    println!(
        "patched       : export patch active = {}, override patch active = {}",
        firmware.export_patch_active(),
        firmware.override_patch_active()
    );
    let driver = Wil6210Driver::new(Arc::clone(&firmware));
    if let Ok(WmiReply::FirmwareVersion(v)) = driver.wmi(&WmiCommand::GetFirmwareVersion) {
        println!("firmware version: {v} (the paper's Acer TravelMate build)");
    }

    // --- Physical setup -------------------------------------------------
    let mut dut = Device::talon(seed);
    let peer = Device::talon(seed + 1);
    let chamber_link = Link::new(Environment::anechoic(3.0));
    let mut campaign = chamber::Campaign::new(chamber::CampaignConfig::coarse(), seed);
    let mut rng = sub_rng(seed, "fw-campaign");
    let patterns = campaign.measure_tx_patterns(&mut rng, &chamber_link, &mut dut, &peer);
    dut.orientation = Orientation::new(35.0, 0.0);
    let link = Link::new(Environment::lab());

    // --- User-space agent: reads the ring buffer, computes CSS, arms the
    // override via WMI (the paper's Fig. 2 white boxes, driven from user
    // space exactly like their Python-over-ssh experiment control).
    let mut agent_css = CompressiveSelection::new(patterns, CssConfig::paper_default(), seed);

    // The peer sweeps; the DUT's firmware is the responder-side policy.
    let runner = SlsRunner::new(&link, &peer, &dut);
    let mut rng = sub_rng(seed, "fw-sls");

    println!("\nsweep 1: stock firmware path (argmax in the firmware)");
    let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut &*firmware);
    driver.notify_sweep(&out.iss_readings, out.initiator_tx_sector);
    let stock_choice = out.initiator_tx_sector.expect("firmware selected");
    println!("  firmware fed back sector {stock_choice} for the peer");

    // Agent wakes up on the driver event, drains the ring buffer and
    // computes the compressive selection from the exported measurements.
    let event = driver.events().try_recv().expect("sweep event delivered");
    println!("  driver event: {event:?}");
    let exported = driver.read_sweep_info();
    println!("  ring buffer exported {} measurements", exported.len());
    let readings: Vec<SweepReading> = exported
        .iter()
        .map(|e| SweepReading {
            sector: e.sector,
            measurement: Some(talon_channel::Measurement {
                snr_db: e.snr_db,
                rssi_dbm: e.rssi_dbm,
            }),
        })
        .collect();
    let css_choice = agent_css
        .select_from_readings(&readings)
        .expect("agent computes a selection");
    println!("  user-space CSS would select sector {css_choice}");

    // Arm the override: from now on the firmware feeds back the agent's
    // sector, not its own argmax.
    driver
        .wmi(&WmiCommand::SetSectorOverride(css_choice))
        .expect("override accepted");
    // And restrict the DUT's own transmit sweep to a compressive subset.
    let probes = agent_css.draw_probes();
    driver
        .wmi(&WmiCommand::SetProbeSectors(probes.clone()))
        .expect("probe subset accepted");
    println!(
        "\nsweep 2: override armed (sector {css_choice}), probing {} sectors",
        probes.len()
    );
    let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut &*firmware);
    println!(
        "  firmware fed back sector {} (the override), own sweep had {} probes",
        out.initiator_tx_sector.expect("override delivered"),
        out.rss_readings.len()
    );
    assert_eq!(out.initiator_tx_sector, Some(css_choice));
    assert_eq!(out.rss_readings.len(), probes.len());

    // Disarm and verify the stock path returns.
    driver
        .wmi(&WmiCommand::ClearSectorOverride)
        .expect("clear accepted");
    driver
        .wmi(&WmiCommand::ClearProbeSectors)
        .expect("clear accepted");
    let out = runner.run(&mut rng, &mut MaxSnrPolicy, &mut &*firmware);
    println!(
        "\nsweep 3: override cleared — firmware argmax again (sector {}, {} probes)",
        out.initiator_tx_sector.expect("stock path"),
        out.rss_readings.len()
    );
}
