//! `talon` — command-line front end to the workspace.
//!
//! Mirrors the workflow of the paper's talon-tools: measure patterns once,
//! record sweep datasets, re-analyse them offline, and run individual
//! trainings.
//!
//! ```text
//! talon campaign  --out patterns.txt [--scan azimuth|3d|coarse] [--seed N]
//! talon record    --scenario lab|conference --out dataset.txt [--seed N] [--paper]
//! talon analyze   --dataset dataset.txt --patterns patterns.txt [--probes 14,20]
//! talon sls       --scenario lab|conference --policy ssw|css [--probes 14] [--yaw DEG]
//! talon brd       --out codebook.brd [--seed N] | --check codebook.brd
//! talon report    trace.{jsonl|bin} [--tree | --flame | --quality | --json]
//! talon replay    trace.{jsonl|bin} [--threads N] [--perturb DB] [--patterns <file>]
//! talon serve     [--metrics-addr HOST:PORT] [--sessions N] [--hold-ms MS] [--tick-ms MS] [--ticks N] [--inject-drift] [--links N] [--flight-dir DIR]
//! talon top       --addr HOST:PORT [--frames N] [--interval-ms MS] [--window TICKS] [--by-link]
//! talon trace     convert <in> <out>
//! talon soak      [--smoke] [--out BENCH_trace.json] [--check <baseline>]
//! ```
//!
//! `record`, `analyze`, `sls` and `serve` accept `--trace <file>` to stream
//! obs events — as JSON Lines, or as the CRC-framed binary format when the
//! path ends in `.bin` — and append a final registry snapshot. `report`
//! renders such a trace (either format, sniffed) as summary tables, a
//! causal span tree (`--tree`), folded flamegraph stacks (`--flame`), a
//! per-session link-quality table (`--quality`), or one machine-readable
//! JSON object (`--json`); `replay` re-executes the trace's recorded
//! decisions and exits non-zero unless every one reproduces bit-exactly;
//! `trace convert` round-trips a trace between the two formats; `soak`
//! runs the record → account → replay trace soak and emits/gates
//! `BENCH_trace.json`; `serve` exposes the registry as Prometheus text on
//! a TCP endpoint while running training sessions, plus the live-monitor
//! routes `/healthz`, `/alerts` and `/timeseries` backed by a tick-driven
//! sampler and alert engine (`--inject-drift` runs the deterministic
//! link-degradation drill); `top` renders a live terminal dashboard from a
//! serving endpoint's `/timeseries` and `/alerts`.

use chamber::{Campaign, CampaignConfig, SectorPatterns};
use css::selection::{CompressiveSelection, CssConfig, DecisionOracle};
use eval::scenario::{EvalScenario, Fidelity};
use geom::rng::sub_rng;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy, SlsRunner};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use talon_channel::{Device, Environment, Link, Orientation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = parse_opts(&args[1..]);
    // `--trace <file>`: stream obs events to a trace file while the
    // command runs, and append a registry snapshot at the end. A `.bin`
    // path selects the compact binary format; anything else gets JSONL.
    let trace_sink: Option<std::sync::Arc<dyn obs::EventSink>> = match opts.get("trace") {
        // `report`, `replay`, `trace`, `soak`, and `profile` read (or
        // manage) existing trace files; never open a sink (which truncates
        // the file) on what is these commands' input.
        Some(_)
            if cmd == "report"
                || cmd == "replay"
                || cmd == "trace"
                || cmd == "soak"
                || cmd == "profile" =>
        {
            None
        }
        // A bare `--trace` parses as the value "true"; require a path
        // instead of silently writing a file named `true`.
        Some(path) if path == "true" => {
            eprintln!("error: --trace needs a file path");
            return ExitCode::from(2);
        }
        Some(path) => {
            let created: std::io::Result<std::sync::Arc<dyn obs::EventSink>> =
                if path.ends_with(".bin") {
                    obs::BinSink::create(path).map(|s| std::sync::Arc::new(s) as _)
                } else {
                    obs::JsonlSink::create(path).map(|s| std::sync::Arc::new(s) as _)
                };
            match created {
                Ok(sink) => {
                    obs::set_sink(sink.clone());
                    Some(sink)
                }
                Err(e) => {
                    eprintln!("error: creating trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let result = match cmd.as_str() {
        "campaign" => cmd_campaign(&opts),
        "record" => cmd_record(&opts),
        "analyze" => cmd_analyze(&opts),
        "sls" => cmd_sls(&opts),
        "brd" => cmd_brd(&opts),
        "report" => cmd_report(&args[1..], &opts),
        "replay" => cmd_replay(&args[1..], &opts),
        "profile" => cmd_profile(&args[1..], &opts),
        "trace" => cmd_trace(&args[1..]),
        "soak" => cmd_soak(&opts),
        "serve" => cmd_serve(&opts),
        "top" => cmd_top(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if let Some(sink) = trace_sink {
        sink.write_snapshot(&obs::global().snapshot());
        obs::clear_sink();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "talon — compressive sector selection toolkit

commands:
  campaign  --out <file> [--scan azimuth|3d|coarse] [--seed N]
  record    --scenario lab|conference --out <file> [--seed N] [--paper] [--trace <file>]
  analyze   --dataset <file> --patterns <file> [--probes 14,20] [--seed N] [--trace <file>]
  sls       --scenario lab|conference --policy ssw|css [--probes 14] [--yaw DEG] [--seed N] [--trace <file>]
  brd       --out <file> [--seed N]  |  --check <file>
  report    <trace.jsonl|.bin> [--tree | --flame | --critical-path [--top K] | --quality | --json]
  replay    <trace.jsonl|.bin> [--threads N] [--perturb DB] [--patterns <file>]
  profile   <trace.jsonl|.bin> [--hz N] [--threads N] [--repeat N]  |  --attach HOST:PORT [--seconds N]
  trace     convert <in> <out>   (input format sniffed; .bin output → binary, else JSONL)
  soak      [--decisions N] [--smoke] [--threads 1,2,8] [--keep <trace.bin>] [--out <bench.json>] [--check <baseline.json>] [--seed N]
  serve     [--metrics-addr HOST:PORT] [--sessions N] [--hold-ms MS] [--tick-ms MS] [--ticks N] [--inject-drift] [--links N] [--flight-dir DIR] [--profile-hz N] [--profile-out <file>] [--seed N]
  top       --addr HOST:PORT [--frames N] [--interval-ms MS] [--window TICKS] [--by-link]";

/// Parses `--key value` and bare `--flag` options; non-option arguments
/// are skipped (commands read them positionally). A `--flag` followed by
/// another option (or nothing) maps to the value `"true"`; a flag whose
/// next argument happens to be the literal string `"true"` consumes it
/// like any other value.
fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    out.insert(key.to_string(), "true".into());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn seed_of(opts: &HashMap<String, String>) -> u64 {
    opts.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn cmd_campaign(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("campaign needs --out <file>")?;
    let seed = seed_of(opts);
    let cfg = match opts.get("scan").map(String::as_str) {
        Some("azimuth") => CampaignConfig::paper_azimuth_scan(),
        Some("3d") | None => CampaignConfig::paper_3d_scan(),
        Some("coarse") => CampaignConfig::coarse(),
        Some(other) => return Err(format!("unknown scan `{other}`")),
    };
    eprintln!(
        "measuring 34 sectors over a {}x{} grid ({} sweeps/position)…",
        cfg.grid.az.len(),
        cfg.grid.el.len(),
        cfg.sweeps_per_position
    );
    let link = Link::new(Environment::anechoic(3.0));
    let mut dut = Device::talon(seed);
    let fixed = Device::talon(seed + 1);
    let mut campaign = Campaign::new(cfg, seed);
    let mut rng = sub_rng(seed, "cli-campaign");
    let patterns = campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &fixed);
    patterns
        .save(Path::new(out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {} sector patterns to {out}", patterns.len());
    Ok(())
}

fn scenario_of(opts: &HashMap<String, String>, seed: u64) -> Result<EvalScenario, String> {
    let fidelity = if opts.contains_key("paper") {
        Fidelity::Paper
    } else {
        Fidelity::Fast
    };
    match opts.get("scenario").map(String::as_str) {
        Some("lab") => Ok(EvalScenario::lab(fidelity, seed)),
        Some("conference") | None => Ok(EvalScenario::conference_room(fidelity, seed)),
        Some(other) => Err(format!("unknown scenario `{other}`")),
    }
}

fn cmd_record(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("record needs --out <file>")?;
    let seed = seed_of(opts);
    let mut scenario = scenario_of(opts, seed)?;
    eprintln!(
        "recording {} positions x {} sweeps in {}…",
        scenario.eval_grid.len(),
        scenario.sweeps_per_position,
        scenario.name
    );
    let data = scenario.record(seed);
    eval::dataset_io::save(&data, Path::new(out)).map_err(|e| format!("writing {out}: {e}"))?;
    if let Some(pat_out) = opts.get("patterns-out") {
        scenario
            .patterns
            .save(Path::new(pat_out))
            .map_err(|e| format!("writing {pat_out}: {e}"))?;
        eprintln!("wrote matching pattern store to {pat_out}");
    }
    eprintln!(
        "wrote dataset ({} positions) to {out}",
        data.positions.len()
    );
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let dataset_path = opts
        .get("dataset")
        .ok_or("analyze needs --dataset <file>")?;
    let patterns_path = opts
        .get("patterns")
        .ok_or("analyze needs --patterns <file>")?;
    let seed = seed_of(opts);
    let data = eval::dataset_io::load(Path::new(dataset_path))
        .map_err(|e| format!("reading {dataset_path}: {e}"))?
        .map_err(|e| format!("parsing {dataset_path}: {e}"))?;
    let patterns = SectorPatterns::load(Path::new(patterns_path))
        .map_err(|e| format!("reading {patterns_path}: {e}"))?
        .map_err(|e| format!("parsing {patterns_path}: {e}"))?;
    let probes: Vec<usize> = match opts.get("probes") {
        Some(spec) => spec
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| format!("bad probe count `{t}`"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![6, 10, 14, 20, 34],
    };
    let stab = eval::stability::selection_stability(&data, &patterns, &probes, seed);
    let loss = eval::snr_loss::snr_loss(&data, &patterns, &probes, seed);
    let rows: Vec<Vec<String>> = stab
        .css
        .iter()
        .zip(&loss.css)
        .map(|(&(m, s), &(_, l))| {
            vec![
                m.to_string(),
                format!("{s:.3}"),
                format!("{:.3}", stab.ssw_stability),
                format!("{l:.2}"),
                format!("{:.2}", loss.ssw_loss_db),
            ]
        })
        .collect();
    println!(
        "{}",
        eval::ascii::table(
            &[
                "M",
                "CSS stability",
                "SSW stability",
                "CSS loss dB",
                "SSW loss dB"
            ],
            &rows
        )
    );
    Ok(())
}

fn cmd_sls(opts: &HashMap<String, String>) -> Result<(), String> {
    let summary = run_sls_session(opts, seed_of(opts))?;
    println!("{summary}");
    Ok(())
}

/// Runs one full training session (the trace root `css.session`: probe
/// sweep → estimate → sector select → override sweep) and returns the
/// one-line result summary.
fn run_sls_session(opts: &HashMap<String, String>, seed: u64) -> Result<String, String> {
    // While tracing, the whole session forms one rooted span tree: every
    // sls.run / wil.sweep / css.estimate below nests under this span.
    let mut session = obs::sink_active().then(|| obs::span("css.session"));
    let yaw: f64 = opts
        .get("yaw")
        .map(|s| s.parse().map_err(|_| "bad --yaw"))
        .transpose()?
        .unwrap_or(-25.0);
    let probes: usize = opts
        .get("probes")
        .map(|s| s.parse().map_err(|_| "bad --probes"))
        .transpose()?
        .unwrap_or(14);
    let scenario = scenario_of(opts, seed)?;
    // Stamp decision records with the reconstruction context so `talon
    // replay` can rebuild this scenario's pattern database from the
    // trace alone.
    if obs::sink_active() {
        let fidelity = if opts.contains_key("paper") {
            "paper"
        } else {
            "fast"
        };
        obs::decision::set_context(&format!(
            "scenario={},fidelity={fidelity},seed={seed}",
            scenario.name
        ));
    }
    let mut dut = scenario.dut.clone();
    dut.orientation = Orientation::new(yaw, 0.0);
    let runner = SlsRunner::new(&scenario.link, &dut, &scenario.fixed);
    let rxw = scenario.fixed.codebook.rx_sector().weights.clone();
    let mut rng = sub_rng(seed, "cli-sls");
    let outcome = match opts.get("policy").map(String::as_str) {
        Some("ssw") | None => runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy),
        Some("css") => {
            // The paper's deployment (§3): the peer's patched firmware
            // exports the sweep measurements, a user-space agent computes
            // the compressive selection and arms the WMI override, and
            // the next training carries it on the air.
            use std::sync::Arc;
            use wil6210::{Qca9500Firmware, Wil6210Driver, WmiCommand};
            struct ProbeOnly<'a>(&'a mut CompressiveSelection);
            impl FeedbackPolicy for ProbeOnly<'_> {
                fn probe_sectors(
                    &mut self,
                    full: &[talon_array::SectorId],
                ) -> Vec<talon_array::SectorId> {
                    self.0.probe_sectors(full)
                }
                fn select(
                    &mut self,
                    readings: &[talon_channel::SweepReading],
                ) -> Option<talon_array::SectorId> {
                    MaxSnrPolicy.select(readings)
                }
            }
            // The peer: patched firmware handles the frames (export +
            // override), while its user-space agent restricts the sweep to
            // the compressive probe subset — both devices send M frames,
            // which is where the 2.3× training speedup comes from.
            struct FirmwareCss<'a> {
                fw: &'a Qca9500Firmware,
                agent: &'a mut CompressiveSelection,
            }
            impl FeedbackPolicy for FirmwareCss<'_> {
                fn probe_sectors(
                    &mut self,
                    full: &[talon_array::SectorId],
                ) -> Vec<talon_array::SectorId> {
                    self.agent.probe_sectors(full)
                }
                fn select(
                    &mut self,
                    readings: &[talon_channel::SweepReading],
                ) -> Option<talon_array::SectorId> {
                    (&mut &*self.fw).select(readings)
                }
            }
            let mut dut_side = CompressiveSelection::new(
                scenario.patterns.clone(),
                CssConfig {
                    num_probes: probes,
                    ..CssConfig::paper_default()
                },
                seed,
            );
            let firmware = Arc::new(Qca9500Firmware::patched());
            let driver = Wil6210Driver::new(Arc::clone(&firmware));
            let mut agent = CompressiveSelection::new(
                scenario.patterns.clone(),
                CssConfig {
                    num_probes: probes,
                    ..CssConfig::paper_default()
                },
                seed + 1,
            );
            // Sweep 1: the firmware's export patch fills the ring buffer.
            let _ = runner.run(
                &mut rng,
                &mut ProbeOnly(&mut dut_side),
                &mut FirmwareCss {
                    fw: &firmware,
                    agent: &mut agent,
                },
            );
            // User space drains the export and computes CSS.
            let readings: Vec<talon_channel::SweepReading> = driver
                .read_sweep_info()
                .into_iter()
                .map(|e| talon_channel::SweepReading {
                    sector: e.sector,
                    measurement: Some(talon_channel::Measurement {
                        snr_db: e.snr_db,
                        rssi_dbm: e.rssi_dbm,
                    }),
                })
                .collect();
            // While tracing, hand the agent an exhaustive-sweep oracle so
            // its decision record carries the true-best sector and the
            // SNR loss of this selection (simulator ground truth only —
            // it perturbs nothing).
            if obs::sink_active() {
                agent.provide_oracle(DecisionOracle {
                    snr_by_sector: dut
                        .codebook
                        .sweep_order()
                        .into_iter()
                        .map(|s| (s, scenario.link.true_snr_db(&dut, s, &scenario.fixed, &rxw)))
                        .collect(),
                });
            }
            if let Some(choice) = agent.select_from_readings(&readings) {
                driver
                    .wmi(&WmiCommand::SetSectorOverride(choice))
                    .map_err(|e| format!("arming override: {e:?}"))?;
            }
            // Sweep 2: the armed override rides the feedback field.
            runner.run(
                &mut rng,
                &mut ProbeOnly(&mut dut_side),
                &mut FirmwareCss {
                    fw: &firmware,
                    agent: &mut agent,
                },
            )
        }
        Some(other) => return Err(format!("unknown policy `{other}`")),
    };
    let snr = outcome
        .initiator_tx_sector
        .map(|s| scenario.link.true_snr_db(&dut, s, &scenario.fixed, &rxw));
    if let Some(session) = &mut session {
        session.field("seed", seed as f64);
        session.field(
            "selected_sector",
            outcome
                .initiator_tx_sector
                .map_or(-1.0, |s| f64::from(s.raw())),
        );
        session.field("probes", outcome.iss_readings.len() as f64);
        if let Some(snr) = snr {
            session.field("true_snr_db", snr);
        }
    }
    Ok(format!(
        "selected sector {:?} in {:.3} ms ({} probes); true SNR {:.1} dB",
        outcome.initiator_tx_sector.map(|s| s.raw()),
        outcome.duration.as_ms(),
        outcome.iss_readings.len(),
        snr.unwrap_or(f64::NAN),
    ))
}

fn cmd_report(args: &[String], opts: &HashMap<String, String>) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .or_else(|| opts.get("trace"))
        .ok_or("report needs a trace file: talon report <trace.jsonl>")?;
    let trace = obs::open_trace(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if trace.skipped > 0 {
        eprintln!(
            "warning: skipped {} malformed record(s) in {path}",
            trace.skipped
        );
    }

    // `--json`: one machine-readable object carrying everything the
    // human renderings show (stage stats, counters, anomaly tallies,
    // per-session quality, skipped-line count).
    if opts.contains_key("json") {
        println!("{}", report_json(&trace).to_json());
        return Ok(());
    }

    // `--quality`: the per-session link-quality table and drift epochs.
    if opts.contains_key("quality") {
        print_quality(&trace);
        return Ok(());
    }

    // `--flame`: folded-stack lines only (pipe into inferno-flamegraph /
    // flamegraph.pl), nothing else on stdout.
    if opts.contains_key("flame") {
        for (stack, self_us) in obs::tree::folded_stacks(&trace.events) {
            println!("{stack} {self_us}");
        }
        return Ok(());
    }

    // `--critical-path`: the top-k longest self-time chains across the
    // traced trees, with per-hop p50/p95 — "which spans actually bounded
    // the wall time", not just where time pooled.
    if opts.contains_key("critical-path") {
        let top_k: usize = opts
            .get("top")
            .map(|k| k.parse().map_err(|_| "bad --top"))
            .transpose()?
            .unwrap_or(5);
        let summaries = obs::tree::critical_paths(&trace.events, top_k);
        if summaries.is_empty() {
            println!("no traced spans in {path}");
            return Ok(());
        }
        for (rank, s) in summaries.iter().enumerate() {
            println!(
                "#{} {} — {} trace(s), {} us total",
                rank + 1,
                s.path.join(" -> "),
                s.traces,
                s.total_us
            );
            let rows: Vec<Vec<String>> = s
                .hops
                .iter()
                .map(|h| {
                    vec![
                        h.stage.clone(),
                        h.p50_us.to_string(),
                        h.p95_us.to_string(),
                        h.total_us.to_string(),
                        format!(
                            "{:.1}",
                            100.0 * h.total_us as f64 / s.total_us.max(1) as f64
                        ),
                    ]
                })
                .collect();
            println!(
                "{}",
                eval::ascii::table(&["hop", "p50 µs", "p95 µs", "total µs", "% of path"], &rows)
            );
        }
        return Ok(());
    }

    // `--tree`: the causal span trees plus the per-session health summary.
    if opts.contains_key("tree") {
        let trees = obs::tree::build_trees(&trace.events);
        if trees.is_empty() {
            println!("no traced spans in {path}");
        } else {
            print!("{}", obs::tree::render_trees(&trees));
        }
        print_health_summary(&trace);
        return Ok(());
    }

    // Per-stage span statistics from the event stream.
    let mut stages: Vec<String> = trace.stages();
    stages.sort();
    let mut rows = Vec::new();
    for stage in &stages {
        let mut durs: Vec<u64> = trace
            .stage(stage)
            .iter()
            .filter(|e| e.kind == "span")
            .map(|e| e.dur_us)
            .collect();
        if durs.is_empty() {
            continue;
        }
        durs.sort_unstable();
        let count = durs.len();
        let mean = durs.iter().sum::<u64>() as f64 / count as f64;
        let p95 = durs[((count - 1) as f64 * 0.95).round() as usize];
        let max = *durs.last().expect("non-empty");
        rows.push(vec![
            stage.clone(),
            count.to_string(),
            format!("{mean:.1}"),
            p95.to_string(),
            max.to_string(),
        ]);
    }
    if rows.is_empty() {
        println!("no span events in {path}");
    } else {
        println!(
            "{}",
            eval::ascii::table(&["stage", "spans", "mean µs", "p95 µs", "max µs"], &rows)
        );
    }

    // Duration quantiles and counters from the final registry snapshot.
    if let Some(snapshot) = &trace.snapshot {
        let rows: Vec<Vec<String>> = snapshot
            .histograms
            .iter()
            .filter(|(name, h)| name.ends_with(".dur_us") && h.count > 0)
            .map(|(name, h)| {
                vec![
                    name.trim_end_matches(".dur_us").to_string(),
                    h.count.to_string(),
                    format!("{:.1}", h.mean()),
                    h.p50().to_string(),
                    h.p95().to_string(),
                    h.p99().to_string(),
                    h.max.to_string(),
                ]
            })
            .collect();
        if !rows.is_empty() {
            println!(
                "{}",
                eval::ascii::table(
                    &["histogram", "count", "mean µs", "p50", "p95", "p99", "max"],
                    &rows
                )
            );
        }
        if !snapshot.counters.is_empty() {
            let rows: Vec<Vec<String>> = snapshot
                .counters
                .iter()
                .map(|(name, value)| vec![name.clone(), value.to_string()])
                .collect();
            println!("{}", eval::ascii::table(&["counter", "value"], &rows));
        }
    } else {
        println!("(no registry snapshot line in trace)");
    }
    print_health_summary(&trace);
    if trace.skipped > 0 {
        println!("skipped {} malformed line(s)", trace.skipped);
    }
    Ok(())
}

/// Prints the per-session quality table (decision records grouped by
/// session) and the drift epochs the online monitor flagged.
fn print_quality(trace: &obs::jsonl::Trace) {
    let sessions = obs::monitor::quality_from_trace(trace);
    if sessions.is_empty() {
        println!("no decision records in trace (record with --trace while training)");
    } else {
        let rows: Vec<Vec<String>> = sessions
            .iter()
            .map(|s| {
                vec![
                    if s.trace_id == 0 {
                        "(untraced)".to_string()
                    } else {
                        s.trace_id.to_string()
                    },
                    s.decisions.to_string(),
                    s.with_oracle.to_string(),
                    s.misselections.to_string(),
                    format!("{:.3}", s.misselection_rate),
                    format!("{:.2}", s.median_snr_loss_db),
                    format!("{:.2}", s.p95_snr_loss_db),
                ]
            })
            .collect();
        println!(
            "{}",
            eval::ascii::table(
                &[
                    "session",
                    "decisions",
                    "oracle",
                    "missel",
                    "rate",
                    "med loss dB",
                    "p95 loss dB",
                ],
                &rows
            )
        );
    }
    let epochs = obs::monitor::drift_epochs_from_trace(&trace.events);
    if epochs.is_empty() {
        println!("drift epochs: none");
    } else {
        let list: Vec<String> = epochs.iter().map(|t| format!("{t:.2}s")).collect();
        println!("drift epochs: {}", list.join(", "));
    }
}

/// Builds the `report --json` object: everything the human renderings
/// show, as one machine-readable value.
fn report_json(trace: &obs::jsonl::Trace) -> Value {
    let mut stages: Vec<String> = trace.stages();
    stages.sort();
    let stage_stats: Vec<Value> = stages
        .iter()
        .filter_map(|stage| {
            let mut durs: Vec<u64> = trace
                .stage(stage)
                .iter()
                .filter(|e| e.kind == "span")
                .map(|e| e.dur_us)
                .collect();
            if durs.is_empty() {
                return None;
            }
            durs.sort_unstable();
            let count = durs.len();
            let mean = durs.iter().sum::<u64>() as f64 / count as f64;
            let p95 = durs[((count - 1) as f64 * 0.95).round() as usize];
            Some(Value::Map(vec![
                ("stage".into(), Value::Str(stage.clone())),
                ("spans".into(), Value::U64(count as u64)),
                ("mean_us".into(), Value::F64(mean)),
                ("p50_us".into(), Value::U64(durs[(count - 1) / 2])),
                ("p95_us".into(), Value::U64(p95)),
                (
                    "max_us".into(),
                    Value::U64(*durs.last().expect("non-empty")),
                ),
            ]))
        })
        .collect();
    let anomalies: Vec<Value> = obs::tree::health_by_trace(&trace.events)
        .iter()
        .flat_map(|(trace_id, kinds)| {
            let trace_id = *trace_id;
            kinds.iter().map(move |(kind, count)| {
                Value::Map(vec![
                    ("trace_id".into(), Value::U64(trace_id)),
                    ("kind".into(), Value::Str(kind.clone())),
                    ("count".into(), Value::U64(*count)),
                ])
            })
        })
        .collect();
    let quality: Vec<Value> = obs::monitor::quality_from_trace(trace)
        .iter()
        .map(obs::monitor::SessionQuality::to_value)
        .collect();
    let drift_epochs: Vec<Value> = obs::monitor::drift_epochs_from_trace(&trace.events)
        .iter()
        .map(|&t| Value::F64(t))
        .collect();
    // Distribution of kernel arithmetic paths across the trace's decision
    // records (pre-schema-3 records decode as "f64", so every decision
    // lands in exactly one bucket).
    let mut kernel_paths: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    for d in &trace.decisions {
        *kernel_paths.entry(d.kernel_path.clone()).or_insert(0) += 1;
    }
    let kernel_paths = Value::Map(
        kernel_paths
            .into_iter()
            .map(|(k, v)| (k, Value::U64(v)))
            .collect(),
    );
    let counters = match &trace.snapshot {
        Some(snapshot) => Value::Map(
            snapshot
                .counters
                .iter()
                .map(|(name, value)| (name.clone(), Value::U64(*value)))
                .collect(),
        ),
        None => Value::Null,
    };
    let histograms = match &trace.snapshot {
        Some(snapshot) => Value::Seq(
            snapshot
                .histograms
                .iter()
                .filter(|(_, h)| h.count > 0)
                .map(|(name, h)| {
                    Value::Map(vec![
                        ("name".into(), Value::Str(name.clone())),
                        ("count".into(), Value::U64(h.count)),
                        ("mean".into(), Value::F64(h.mean())),
                        ("p50".into(), Value::U64(h.p50())),
                        ("p95".into(), Value::U64(h.p95())),
                        ("p99".into(), Value::U64(h.p99())),
                        ("max".into(), Value::U64(h.max)),
                    ])
                })
                .collect(),
        ),
        None => Value::Null,
    };
    Value::Map(vec![
        (
            "schema_version".into(),
            Value::U64(obs::decision::SCHEMA_VERSION),
        ),
        ("events".into(), Value::U64(trace.events.len() as u64)),
        ("decisions".into(), Value::U64(trace.decisions.len() as u64)),
        ("kernel_paths".into(), kernel_paths),
        ("skipped_lines".into(), Value::U64(trace.skipped as u64)),
        ("stages".into(), Value::Seq(stage_stats)),
        ("counters".into(), counters),
        ("histograms".into(), histograms),
        ("anomalies".into(), Value::Seq(anomalies)),
        ("quality".into(), Value::Seq(quality)),
        ("drift_epochs".into(), Value::Seq(drift_epochs)),
    ])
}

/// `talon replay <trace.jsonl>`: re-executes every replayable decision in
/// the trace and fails unless all of them reproduce bit-exactly.
fn cmd_replay(args: &[String], opts: &HashMap<String, String>) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .or_else(|| opts.get("trace"))
        .ok_or("replay needs a trace file: talon replay <trace.jsonl>")?;
    let trace = obs::open_trace(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if trace.skipped > 0 {
        eprintln!(
            "warning: skipped {} malformed record(s) in {path}",
            trace.skipped
        );
    }
    if trace.decisions.is_empty() {
        return Err(format!(
            "no decision records in {path}; record one with e.g. \
             `talon sls --policy css --trace {path}`"
        ));
    }
    let mut config = eval::replay::ReplayConfig::default();
    if let Some(t) = opts.get("threads") {
        config.threads = t.parse().map_err(|_| "bad --threads")?;
    }
    if let Some(p) = opts.get("perturb") {
        config.perturb_snr_db = p.parse().map_err(|_| "bad --perturb")?;
    }
    if let Some(pat) = opts.get("patterns") {
        let patterns = SectorPatterns::load(Path::new(pat))
            .map_err(|e| format!("reading {pat}: {e}"))?
            .map_err(|e| format!("parsing {pat}: {e}"))?;
        config.patterns_override = Some(patterns);
    }
    let report = eval::replay::replay_trace(&trace, &config);
    if opts.contains_key("json") {
        println!("{}", Serialize::serialize(&report).to_json());
    } else {
        println!("{}", report.summary());
        const SHOWN: usize = 20;
        for d in report.divergent.iter().take(SHOWN) {
            println!(
                "  decision {} (session {}): {} recorded {} recomputed {}",
                d.index, d.trace_id, d.field, d.expected, d.actual
            );
        }
        if report.divergent.len() > SHOWN {
            println!("  … and {} more", report.divergent.len() - SHOWN);
        }
    }
    if report.is_clean() {
        if !opts.contains_key("json") {
            println!("replay OK: every decision reproduced bit-exactly");
        }
        Ok(())
    } else {
        Err(format!(
            "replay diverged: {} divergence(s), {} digest mismatch(es), {} decision(s) without patterns",
            report.divergent.len(),
            report.digest_mismatches,
            report.skipped_no_patterns,
        ))
    }
}

/// `talon profile`: folded flame stacks from the sampling profiler.
///
/// Two modes: `--attach HOST:PORT` windows a live endpoint's attached
/// profiler through `/profile?seconds=N`; a positional trace file replays
/// its decisions under a local profiler (the trace provides the workload,
/// the profiler watches the real estimator/replay code run it). Folded
/// stacks go to stdout in the exact format `talon report --flame` emits,
/// ready for inferno-flamegraph / flamegraph.pl.
fn cmd_profile(args: &[String], opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(addr) = opts.get("attach") {
        if addr == "true" {
            return Err("--attach needs HOST:PORT".into());
        }
        let seconds: u64 = opts
            .get("seconds")
            .map(|s| s.parse().map_err(|_| "bad --seconds"))
            .transpose()?
            .unwrap_or(0);
        let body = http_get_timeout(
            addr,
            &format!("/profile?seconds={seconds}"),
            std::time::Duration::from_secs(seconds + 10),
        )?;
        print!("{body}");
        return Ok(());
    }
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("profile needs a trace file or --attach HOST:PORT")?;
    let trace = obs::open_trace(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))?;
    if trace.decisions.is_empty() {
        return Err(format!(
            "no decision records in {path}; record one with e.g. \
             `talon sls --policy css --trace {path}`"
        ));
    }
    let hz: u64 = opts
        .get("hz")
        .map(|s| s.parse().map_err(|_| "bad --hz"))
        .transpose()?
        .unwrap_or(1000);
    let repeat: usize = opts
        .get("repeat")
        .map(|s| s.parse().map_err(|_| "bad --repeat"))
        .transpose()?
        .unwrap_or(0);
    let mut config = eval::replay::ReplayConfig::default();
    if let Some(t) = opts.get("threads") {
        config.threads = t.parse().map_err(|_| "bad --threads")?;
    }
    let profiler = obs::Profiler::start_hz(hz.max(1));
    // Gated call sites only construct their spans while a sink is
    // recording — without one the replay would publish no frames at all.
    // A memory sink (drained each pass so it never grows) flips that gate.
    let mem = std::sync::Arc::new(obs::MemorySink::new());
    obs::set_sink(mem.clone());
    // Replay provides the workload. With an explicit --repeat, run exactly
    // that many passes; otherwise repeat until the sampler had a fair
    // chance (~250 ms of wall time), so short traces still yield stacks.
    let started = std::time::Instant::now();
    let mut runs = 0usize;
    loop {
        let _ = eval::replay::replay_trace(&trace, &config);
        drop(mem.take());
        runs += 1;
        if repeat > 0 {
            if runs >= repeat {
                break;
            }
        } else if started.elapsed() >= std::time::Duration::from_millis(250) || runs >= 1000 {
            break;
        }
    }
    obs::clear_sink();
    let folded = profiler.folded_text();
    eprintln!(
        "profiled {} replay pass(es) of {} decision(s) at {} Hz: {} sample pass(es)",
        runs,
        trace.decisions.len(),
        hz.max(1),
        profiler.passes()
    );
    print!("{folded}");
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    const TRACE_USAGE: &str = "usage: talon trace convert <in> <out>  (input format sniffed; \
         .bin output → binary, else JSONL)";
    match args.first().map(String::as_str) {
        Some("convert") => {
            let mut paths = args[1..].iter().filter(|a| !a.starts_with("--"));
            let input = paths.next().ok_or(TRACE_USAGE)?.clone();
            let output = paths.next().ok_or(TRACE_USAGE)?.clone();
            convert_trace(&input, &output)
        }
        _ => Err(TRACE_USAGE.into()),
    }
}

/// Streams a trace from one format to the other (record by record, bounded
/// memory), choosing the output codec by extension: `.bin` → binary,
/// anything else → JSONL. Damaged input records are skipped and counted,
/// same as every other reader in the workspace.
fn convert_trace(input: &str, output: &str) -> Result<(), String> {
    use obs::TraceRecord;
    if input == output {
        return Err("refusing to convert a trace onto itself".into());
    }
    let mut reader =
        obs::open_reader(Path::new(input)).map_err(|e| format!("reading {input}: {e}"))?;
    let sink: std::sync::Arc<dyn obs::EventSink> = if output.ends_with(".bin") {
        std::sync::Arc::new(
            obs::BinSink::create(output).map_err(|e| format!("creating {output}: {e}"))?,
        )
    } else {
        std::sync::Arc::new(
            obs::JsonlSink::create(output).map_err(|e| format!("creating {output}: {e}"))?,
        )
    };
    let (mut events, mut decisions, mut snapshots) = (0u64, 0u64, 0u64);
    while let Some(record) = reader.next_record()? {
        match record {
            TraceRecord::Event(e) => {
                sink.emit(&e);
                events += 1;
            }
            TraceRecord::Decision(d) => {
                sink.emit_decision(&d);
                decisions += 1;
            }
            TraceRecord::Snapshot(s) => {
                sink.write_snapshot(&s);
                snapshots += 1;
            }
        }
    }
    sink.flush();
    if reader.skipped() > 0 {
        eprintln!(
            "warning: skipped {} damaged record(s) in {input}",
            reader.skipped()
        );
    }
    let size = |p: &str| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    let (in_bytes, out_bytes) = (size(input), size(output));
    println!(
        "converted {input} → {output}: {events} event(s), {decisions} decision(s), \
         {snapshots} snapshot(s); {in_bytes} → {out_bytes} bytes ({:.2}× {})",
        if out_bytes > 0 {
            in_bytes as f64 / out_bytes as f64
        } else {
            f64::NAN
        },
        if out_bytes <= in_bytes {
            "smaller"
        } else {
            "larger"
        },
    );
    Ok(())
}

/// Keys every `BENCH_trace.json` must carry (the `--check` contract).
const SOAK_REQUIRED_KEYS: &[&str] = &[
    "decisions",
    "trace_bytes",
    "bytes_per_decision",
    "jsonl_bytes_per_decision",
    "compression_ratio",
    "record_per_s",
    "replay_inline_1t_per_s",
    "replay_1t_per_s",
    "replay_nt_per_s",
    "replay_nt_threads",
    "rss_peak_mb",
    "max_abs_err",
];

/// The ≥5× compression floor `BENCH_trace.json` is gated on.
const SOAK_MIN_COMPRESSION: f64 = 5.0;

/// Extracts a numeric value from a flat JSON object without a parser
/// (the serde shim has no `from_str`; the files are machine-written).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)?;
    let rest = text[at + pat.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn cmd_soak(opts: &HashMap<String, String>) -> Result<(), String> {
    let smoke = opts.get("smoke").is_some();
    let decisions = match opts.get("decisions") {
        Some(d) => d.parse().map_err(|_| format!("bad --decisions {d}"))?,
        None if smoke => eval::soak::SMOKE_DECISIONS,
        None => eval::soak::FULL_DECISIONS,
    };
    let threads: Vec<usize> = match opts.get("threads") {
        Some(t) => t
            .split(',')
            .map(|p| p.trim().parse().map_err(|_| format!("bad --threads {t}")))
            .collect::<Result<_, _>>()?,
        None => vec![1, 2, 8],
    };
    if threads.is_empty() {
        return Err("soak needs at least one --threads entry".into());
    }
    let config = eval::SoakConfig {
        decisions,
        threads,
        seed: seed_of(opts),
        keep: opts.get("keep").map(std::path::PathBuf::from),
    };
    let report = eval::run_soak(&config, |line| println!("{line}"))?;

    let replay_1t = report
        .replay
        .iter()
        .find(|r| r.threads == 1)
        .or(report.replay.first())
        .expect("at least one replay pass");
    let replay_nt = report
        .replay
        .iter()
        .max_by_key(|r| r.threads)
        .expect("at least one replay pass");
    let json = format!(
        "{{\n  \"decisions\": {},\n  \
         \"trace_bytes\": {},\n  \
         \"bytes_per_decision\": {:.2},\n  \
         \"jsonl_bytes_per_decision\": {:.2},\n  \
         \"compression_ratio\": {:.2},\n  \
         \"record_per_s\": {:.0},\n  \
         \"replay_inline_1t_per_s\": {:.0},\n  \
         \"replay_1t_per_s\": {:.0},\n  \
         \"replay_nt_per_s\": {:.0},\n  \
         \"replay_nt_threads\": {},\n  \
         \"rss_peak_mb\": {:.1},\n  \
         \"max_abs_err\": {:.1},\n  \
         \"smoke\": {smoke}\n}}\n",
        report.decisions,
        report.trace_bytes,
        report.bytes_per_decision,
        report.jsonl_bytes_per_decision,
        report.compression_ratio,
        report.record_per_s,
        report.replay_inline_1t_per_s,
        replay_1t.per_s,
        replay_nt.per_s,
        replay_nt.threads,
        report.rss_peak_mb,
        report.max_abs_err,
    );
    let out = opts
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_trace.json".into());
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("{json}");
    println!("wrote {out}");

    if let Some(baseline_path) = opts.get("check") {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("--check: cannot read {baseline_path}: {e}"))?;
        let mut failures = Vec::new();
        for key in SOAK_REQUIRED_KEYS {
            if json_f64(&json, key).is_none() {
                failures.push(format!("fresh measurement is missing key {key:?}"));
            }
            if json_f64(&baseline, key).is_none() {
                failures.push(format!("baseline {baseline_path} is missing key {key:?}"));
            }
        }
        if report.compression_ratio < SOAK_MIN_COMPRESSION {
            failures.push(format!(
                "compression ratio {:.2}× is below the {SOAK_MIN_COMPRESSION}× floor",
                report.compression_ratio
            ));
        }
        // Size is deterministic for a fixed workload, so a fatter record
        // is a codec regression, not noise (unlike throughput, which is
        // host-dependent and not compared).
        if let Some(base_bpd) = json_f64(&baseline, "bytes_per_decision") {
            let limit = base_bpd * 1.15;
            if report.bytes_per_decision > limit {
                failures.push(format!(
                    "bytes/decision regressed >15%: {:.1} vs baseline {base_bpd:.1} \
                     (limit {limit:.1})",
                    report.bytes_per_decision
                ));
            }
        }
        if !failures.is_empty() {
            let mut message = String::from("BENCH_trace check FAILED:");
            for f in &failures {
                message.push_str(&format!("\n  - {f}"));
            }
            return Err(message);
        }
        println!("check against {baseline_path}: OK");
    }
    Ok(())
}

/// Prints per-session (per-trace) link-health anomaly counts, when any
/// anomaly events are in the trace.
fn print_health_summary(trace: &obs::jsonl::Trace) {
    let health = obs::tree::health_by_trace(&trace.events);
    if health.is_empty() {
        return;
    }
    let rows: Vec<Vec<String>> = health
        .iter()
        .flat_map(|(trace_id, kinds)| {
            kinds.iter().map(move |(kind, count)| {
                vec![
                    if *trace_id == 0 {
                        "(untraced)".to_string()
                    } else {
                        trace_id.to_string()
                    },
                    kind.clone(),
                    count.to_string(),
                ]
            })
        })
        .collect();
    println!(
        "{}",
        eval::ascii::table(&["session", "anomaly", "count"], &rows)
    );
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("metrics-addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let sessions: usize = opts
        .get("sessions")
        .map(|s| s.parse().map_err(|_| "bad --sessions"))
        .transpose()?
        .unwrap_or(4);
    let hold_ms: Option<u64> = opts
        .get("hold-ms")
        .map(|s| s.parse().map_err(|_| "bad --hold-ms"))
        .transpose()?;
    let tick_ms: u64 = opts
        .get("tick-ms")
        .map(|s| s.parse().map_err(|_| "bad --tick-ms"))
        .transpose()?
        .unwrap_or(1000);
    if tick_ms == 0 {
        return Err("--tick-ms must be at least 1".into());
    }
    let max_ticks: Option<u64> = opts
        .get("ticks")
        .map(|s| s.parse().map_err(|_| "bad --ticks"))
        .transpose()?;
    let links: u64 = opts
        .get("links")
        .map(|s| s.parse().map_err(|_| "bad --links"))
        .transpose()?
        .unwrap_or(3);
    let flight_dir = opts
        .get("flight-dir")
        .map(String::as_str)
        .unwrap_or(".")
        .to_string();
    std::fs::create_dir_all(&flight_dir)
        .map_err(|e| format!("cannot create --flight-dir {flight_dir}: {e}"))?;
    // Pre-register the health counters so the exposition carries the
    // link-health series (at zero) even before the first anomaly.
    obs::health::register_known_kinds();
    let monitor = std::sync::Arc::new(obs::LiveMonitor::new(
        obs::SamplerConfig {
            tick_ms,
            ..obs::SamplerConfig::default()
        },
        obs::default_rules(),
    ));
    // Always-on flight recorder: every event/decision/snapshot lands in a
    // bounded in-memory ring, teed alongside any `--trace` sink, and
    // dumped to `<flight-dir>/flight-<rule>-<seq>.bin` when an alert
    // transitions into firing (or the process panics).
    let flight = std::sync::Arc::new(obs::FlightRecorder::new(obs::FlightConfig {
        dir: flight_dir.into(),
        ..obs::FlightConfig::default()
    }));
    let flight_sink: std::sync::Arc<dyn obs::EventSink> = flight.clone();
    match obs::current_sink() {
        Some(existing) => obs::set_sink(std::sync::Arc::new(obs::FanoutSink::new(vec![
            existing,
            flight_sink,
        ]))),
        None => obs::set_sink(flight_sink),
    }
    obs::flight::install_panic_hook(&flight);
    monitor.attach_flight(std::sync::Arc::clone(&flight));
    // `--profile-hz N`: run the sampling profiler for the life of the
    // server and expose it on `/profile`; `--profile-out <file>` also
    // writes the accumulated folded stacks at exit.
    let profiler: Option<std::sync::Arc<obs::Profiler>> = match opts.get("profile-hz") {
        Some(hz) => {
            let hz: u64 = hz.parse().map_err(|_| "bad --profile-hz")?;
            let p = std::sync::Arc::new(obs::Profiler::start_hz(hz.max(1)));
            monitor.attach_profiler(std::sync::Arc::clone(&p));
            Some(p)
        }
        None => None,
    };
    if opts.contains_key("profile-out") && profiler.is_none() {
        return Err("--profile-out needs --profile-hz".into());
    }
    // Per-link metric shards: each link's monitor writes plain-named
    // series into its own lock-local registry; the labels appear when the
    // monitor merges the shards into its sampled snapshot.
    let shards = std::sync::Arc::new(obs::ShardedRegistry::new());
    monitor.attach_shards(std::sync::Arc::clone(&shards));
    let server = obs::MetricsServer::start_with_monitor(addr, std::sync::Arc::clone(&monitor))
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("serving metrics on http://{}/metrics", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let seed = seed_of(opts);
    for i in 0..sessions {
        let summary = run_sls_session(opts, seed + i as u64)?;
        eprintln!("session {i}: {summary}");
    }

    let result = if opts.contains_key("inject-drift") {
        run_drift_drill(&monitor, &shards, links, tick_ms, max_ticks, hold_ms)
    } else {
        // Production path: a timer thread ticks the sampler/alert engine
        // at the configured cadence while this thread holds the process
        // open.
        let _ticker = monitor.start_ticker(std::time::Duration::from_millis(tick_ms));
        let start = std::time::Instant::now();
        loop {
            std::thread::sleep(std::time::Duration::from_millis(50));
            if let Some(n) = max_ticks {
                if monitor.ticks() >= n {
                    break;
                }
            }
            if let Some(ms) = hold_ms {
                if start.elapsed() >= std::time::Duration::from_millis(ms) {
                    break;
                }
            }
        }
        Ok(())
    };
    if let (Some(profiler), Some(out)) = (&profiler, opts.get("profile-out")) {
        std::fs::write(out, profiler.folded_text())
            .map_err(|e| format!("writing --profile-out {out}: {e}"))?;
        eprintln!(
            "profile: {} sample pass(es) written to {out}",
            profiler.passes()
        );
    }
    result
}

/// The `--inject-drift` drill: drives the sampler tick-by-tick from this
/// thread (no timer races) while [`netsim::DriftProfile`]s degrade and
/// recover the links through quality monitors. The aggregate (unlabeled)
/// monitor follows the stock [`netsim::DriftProfile::demo`] step, which
/// keeps the single `/healthz` 503 episode of the original drill; each of
/// the `links` fleet links additionally runs a staggered
/// [`netsim::DriftProfile::demo_link`] profile through a shard-homed
/// monitor, so per-link labeled series and the per-link template alerts
/// fire at their own deterministic ticks. Every alert edge is printed with
/// its tick number, so two runs with the same flags produce byte-identical
/// `alert …` lines — the acceptance contract for the monitoring pipeline.
/// Wall-clock sleeps only pace the ticks (so scrapes can watch `/healthz`
/// flip); they never influence what happens at one.
fn run_drift_drill(
    monitor: &obs::LiveMonitor,
    shards: &obs::ShardedRegistry,
    links: u64,
    tick_ms: u64,
    max_ticks: Option<u64>,
    hold_ms: Option<u64>,
) -> Result<(), String> {
    use std::io::Write as _;
    let profile = netsim::DriftProfile::demo();
    let ticks = max_ticks.unwrap_or(45);
    let mut quality = obs::QualityMonitor::new();
    let mut fleet: Vec<(netsim::DriftProfile, obs::QualityMonitor)> = (0..links)
        .map(|i| {
            let shard = shards.shard(&obs::LabelSet::link(i));
            (
                netsim::DriftProfile::demo_link(i),
                obs::QualityMonitor::for_shard(&shard),
            )
        })
        .collect();
    let mut edges = 0usize;
    for tick in 0..ticks {
        quality.record_loss(tick as f64, profile.loss_at(tick));
        for (link_profile, link_quality) in fleet.iter_mut() {
            link_quality.record_loss(tick as f64, link_profile.loss_at(tick));
        }
        for t in monitor.tick() {
            edges += 1;
            println!(
                "tick {}: alert {} {}->{} (value {:.1})",
                t.tick, t.rule, t.from, t.to, t.value
            );
            std::io::stdout().flush().ok();
        }
        std::thread::sleep(std::time::Duration::from_millis(tick_ms));
    }
    println!("drift drill complete: {edges} transition(s) over {ticks} tick(s)");
    std::io::stdout().flush().ok();
    if let Some(ms) = hold_ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    Ok(())
}

/// Renders `values` as a unicode block sparkline, scaled to its own
/// min..max (a flat series renders as all-low blocks).
fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            let frac = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            BLOCKS[((frac * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// One HTTP/1.1 GET over a raw TCP stream (the workspace has no HTTP
/// client); returns the response body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    http_get_timeout(addr, path, std::time::Duration::from_secs(5))
}

/// [`http_get`] with an explicit read timeout — windowed `/profile`
/// captures legitimately hold the connection for the whole window.
fn http_get_timeout(
    addr: &str,
    path: &str,
    timeout: std::time::Duration,
) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("sending request to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("reading from {addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    let status = head.lines().next().unwrap_or_default();
    // /healthz legitimately answers 503; the dashboard still wants the
    // body. Anything else non-200 is an error worth surfacing.
    if !status.contains(" 200 ") && !status.contains(" 503 ") {
        return Err(format!("{path}: {status}"));
    }
    Ok(body.to_string())
}

/// `talon top`: a plain-ANSI live dashboard over a serving endpoint's
/// `/timeseries` overview and `/alerts`.
fn cmd_top(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .ok_or("top needs --addr HOST:PORT (from `talon serve`)")?;
    let frames: u64 = opts
        .get("frames")
        .map(|s| s.parse().map_err(|_| "bad --frames"))
        .transpose()?
        .unwrap_or(0); // 0 = until killed
    let interval_ms: u64 = opts
        .get("interval-ms")
        .map(|s| s.parse().map_err(|_| "bad --interval-ms"))
        .transpose()?
        .unwrap_or(1000);
    let window: u64 = opts
        .get("window")
        .map(|s| s.parse().map_err(|_| "bad --window"))
        .transpose()?
        .unwrap_or(60);
    let by_link = opts.contains_key("by-link");
    // One clear line on a dead or wrong endpoint beats a raw io error (or
    // worse, an empty dashboard): name the address and what to check.
    let fetch = |path: &str| -> Result<String, String> {
        http_get(addr, path)
            .map_err(|e| format!("cannot scrape {addr} ({e}); is `talon serve` running there?"))
    };
    let mut frame = 0u64;
    loop {
        let alerts = fetch("/alerts")?;
        let screen = if by_link {
            let links = fetch(&format!("/links?window={window}"))?;
            render_top_links(addr, window, &links, &alerts)?
        } else {
            let overview = fetch(&format!("/timeseries?window={window}"))?;
            render_top(addr, window, &overview, &alerts)?
        };
        if frames != 1 {
            // Clear + home between frames; a single-frame run (tests,
            // scripts) stays pipe-friendly.
            print!("\x1b[2J\x1b[H");
        }
        println!("{screen}");
        frame += 1;
        if frames != 0 && frame >= frames {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Appends the firing-alerts block shared by both `talon top` views.
fn push_firing_block(out: &mut String, alerts: &Value) {
    let firing: Vec<String> = alerts
        .get("alerts")
        .and_then(Value::as_seq)
        .unwrap_or(&[])
        .iter()
        .filter(|a| a.get("state").and_then(Value::as_str) == Some("firing"))
        .map(|a| {
            format!(
                "{} [{}] value {:.1}",
                a.get("name").and_then(Value::as_str).unwrap_or("?"),
                a.get("severity").and_then(Value::as_str).unwrap_or("?"),
                a.get("value").and_then(Value::as_f64).unwrap_or(f64::NAN),
            )
        })
        .collect();
    if firing.is_empty() {
        out.push_str("alerts: none firing\n");
    } else {
        out.push_str("ALERTS FIRING:\n");
        for f in &firing {
            out.push_str(&format!("  ! {f}\n"));
        }
    }
}

/// Builds one `talon top --by-link` frame from the `/links` rollup and
/// `/alerts` JSON payloads: one row per link, worst first.
fn render_top_links(addr: &str, window: u64, links: &str, alerts: &str) -> Result<String, String> {
    let links = Value::from_json(links).map_err(|e| format!("parsing /links: {e:?}"))?;
    let alerts = Value::from_json(alerts).map_err(|e| format!("parsing /alerts: {e:?}"))?;
    let tick = links.get("tick").and_then(Value::as_u64).unwrap_or(0);
    let count = links.get("count").and_then(Value::as_u64).unwrap_or(0);
    let mut out =
        format!("talon top — {addr}  tick {tick}  window {window}  links {count} (worst first)\n");
    push_firing_block(&mut out, &alerts);
    let mut rows = Vec::new();
    for l in links.get("links").and_then(Value::as_seq).unwrap_or(&[]) {
        let firing = l
            .get("firing")
            .and_then(Value::as_seq)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_str)
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(vec![
            l.get("link")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            l.get("snr_loss_mdb")
                .and_then(Value::as_i64)
                .map_or_else(|| "-".into(), |v| v.to_string()),
            l.get("misselection_ppm")
                .and_then(Value::as_i64)
                .map_or_else(|| "-".into(), |v| v.to_string()),
            l.get("drift_total")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .to_string(),
            l.get("drift_rate_per_tick")
                .and_then(Value::as_f64)
                .map_or_else(|| "-".into(), |r| format!("{r:.3}")),
            if firing.is_empty() {
                "-".into()
            } else {
                firing
            },
        ]);
    }
    if rows.is_empty() {
        out.push_str("no link-labeled series sampled yet\n");
    } else {
        out.push_str(&eval::ascii::table(
            &[
                "link",
                "snr loss mdB",
                "missel ppm",
                "drift",
                "drift/tick",
                "firing",
            ],
            &rows,
        ));
    }
    Ok(out)
}

/// Builds one `talon top` frame from the `/timeseries` overview and
/// `/alerts` JSON payloads.
fn render_top(addr: &str, window: u64, overview: &str, alerts: &str) -> Result<String, String> {
    let overview = Value::from_json(overview).map_err(|e| format!("parsing /timeseries: {e:?}"))?;
    let alerts = Value::from_json(alerts).map_err(|e| format!("parsing /alerts: {e:?}"))?;
    let tick = overview.get("tick").and_then(Value::as_u64).unwrap_or(0);
    let tick_ms = overview.get("tick_ms").and_then(Value::as_u64).unwrap_or(0);
    let mut out = format!("talon top — {addr}  tick {tick} ({tick_ms} ms/tick)  window {window}\n");

    push_firing_block(&mut out, &alerts);

    let spark_of = |v: &Value, key: &str| -> String {
        let values: Vec<f64> = v
            .get(key)
            .and_then(Value::as_seq)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_f64)
            .collect();
        sparkline(&values)
    };
    let mut rows = Vec::new();
    for c in overview
        .get("counters")
        .and_then(Value::as_seq)
        .unwrap_or(&[])
    {
        rows.push(vec![
            c.get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            c.get("value")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .to_string(),
            c.get("rate_per_s")
                .and_then(Value::as_f64)
                .map_or_else(|| "-".into(), |r| format!("{r:.2}")),
            spark_of(c, "deltas"),
        ]);
    }
    if !rows.is_empty() {
        out.push_str(&eval::ascii::table(
            &["counter", "value", "rate/s", "trend"],
            &rows,
        ));
        out.push('\n');
    }

    let mut rows = Vec::new();
    for g in overview
        .get("gauges")
        .and_then(Value::as_seq)
        .unwrap_or(&[])
    {
        rows.push(vec![
            g.get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            g.get("last")
                .and_then(Value::as_i64)
                .unwrap_or(0)
                .to_string(),
            g.get("min")
                .and_then(Value::as_i64)
                .unwrap_or(0)
                .to_string(),
            g.get("mean")
                .and_then(Value::as_f64)
                .map_or_else(|| "-".into(), |m| format!("{m:.1}")),
            g.get("max")
                .and_then(Value::as_i64)
                .unwrap_or(0)
                .to_string(),
            spark_of(g, "points"),
        ]);
    }
    if !rows.is_empty() {
        out.push_str(&eval::ascii::table(
            &["gauge", "last", "min", "mean", "max", "trend"],
            &rows,
        ));
        out.push('\n');
    }

    let mut rows = Vec::new();
    for h in overview
        .get("histograms")
        .and_then(Value::as_seq)
        .unwrap_or(&[])
    {
        let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
        if count == 0 {
            continue; // nothing recorded in the window — noise on screen
        }
        rows.push(vec![
            h.get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            count.to_string(),
            h.get("mean")
                .and_then(Value::as_f64)
                .map_or_else(|| "-".into(), |m| format!("{m:.1}")),
            h.get("p50")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .to_string(),
            h.get("p95")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .to_string(),
            h.get("p99")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    if !rows.is_empty() {
        out.push_str(&eval::ascii::table(
            &[
                "histogram (window)",
                "count",
                "mean µs",
                "p50",
                "p95",
                "p99",
            ],
            &rows,
        ));
    }
    Ok(out)
}

fn cmd_brd(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = opts.get("check") {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let cb = talon_array::brd::from_brd(&bytes).map_err(|e| format!("parsing {path}: {e}"))?;
        println!(
            "{path}: valid board file, {} sectors ({} transmit)",
            cb.sectors().len(),
            cb.num_tx_sectors()
        );
        return Ok(());
    }
    let out = opts
        .get("out")
        .ok_or("brd needs --out <file> or --check <file>")?;
    let seed = seed_of(opts);
    let device = Device::talon(seed);
    let bytes = talon_array::brd::to_brd(&device.codebook);
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} bytes ({} sectors) to {out}",
        bytes.len(),
        device.codebook.sectors().len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::parse_opts;

    fn opts(args: &[&str]) -> std::collections::HashMap<String, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_opts(&owned)
    }

    #[test]
    fn bare_flag_maps_to_true() {
        let o = opts(&["--paper"]);
        assert_eq!(o.get("paper").map(String::as_str), Some("true"));
    }

    #[test]
    fn flag_with_value_consumes_it() {
        let o = opts(&["--seed", "7", "--out", "x.txt"]);
        assert_eq!(o.get("seed").map(String::as_str), Some("7"));
        assert_eq!(o.get("out").map(String::as_str), Some("x.txt"));
    }

    #[test]
    fn flag_followed_by_flag_stays_bare() {
        let o = opts(&["--paper", "--seed", "9"]);
        assert_eq!(o.get("paper").map(String::as_str), Some("true"));
        assert_eq!(o.get("seed").map(String::as_str), Some("9"));
    }

    #[test]
    fn literal_true_value_is_consumed_not_reparsed() {
        // `--verbose true --seed 3`: "true" is the value of --verbose and
        // must not be skipped over in a way that desyncs later options
        // (the old parser double-checked the next token and could step
        // by the wrong amount).
        let o = opts(&["--verbose", "true", "--seed", "3"]);
        assert_eq!(o.get("verbose").map(String::as_str), Some("true"));
        assert_eq!(o.get("seed").map(String::as_str), Some("3"));
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn positional_arguments_are_skipped() {
        let o = opts(&["trace.jsonl", "--seed", "4"]);
        assert_eq!(o.get("seed").map(String::as_str), Some("4"));
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn trailing_bare_flag() {
        let o = opts(&["--out", "f.txt", "--paper"]);
        assert_eq!(o.get("paper").map(String::as_str), Some("true"));
        assert_eq!(o.get("out").map(String::as_str), Some("f.txt"));
    }
}
