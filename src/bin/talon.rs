//! `talon` — command-line front end to the workspace.
//!
//! Mirrors the workflow of the paper's talon-tools: measure patterns once,
//! record sweep datasets, re-analyse them offline, and run individual
//! trainings.
//!
//! ```text
//! talon campaign  --out patterns.txt [--scan azimuth|3d|coarse] [--seed N]
//! talon record    --scenario lab|conference --out dataset.txt [--seed N] [--paper]
//! talon analyze   --dataset dataset.txt --patterns patterns.txt [--probes 14,20]
//! talon sls       --scenario lab|conference --policy ssw|css [--probes 14] [--yaw DEG]
//! talon brd       --out codebook.brd [--seed N] | --check codebook.brd
//! ```

use chamber::{Campaign, CampaignConfig, SectorPatterns};
use css::selection::{CompressiveSelection, CssConfig};
use eval::scenario::{EvalScenario, Fidelity};
use geom::rng::sub_rng;
use mac80211ad::sls::{FeedbackPolicy, MaxSnrPolicy, SlsRunner};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use talon_channel::{Device, Environment, Link, Orientation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = parse_opts(&args[1..]);
    let result = match cmd.as_str() {
        "campaign" => cmd_campaign(&opts),
        "record" => cmd_record(&opts),
        "analyze" => cmd_analyze(&opts),
        "sls" => cmd_sls(&opts),
        "brd" => cmd_brd(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "talon — compressive sector selection toolkit

commands:
  campaign  --out <file> [--scan azimuth|3d|coarse] [--seed N]
  record    --scenario lab|conference --out <file> [--seed N] [--paper]
  analyze   --dataset <file> --patterns <file> [--probes 14,20] [--seed N]
  sls       --scenario lab|conference --policy ssw|css [--probes 14] [--yaw DEG] [--seed N]
  brd       --out <file> [--seed N]  |  --check <file>";

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".into());
            let step = if value == "true" && args.get(i + 1).map(|v| v.starts_with("--")).unwrap_or(true) {
                1
            } else {
                2
            };
            out.insert(key.to_string(), value);
            i += step;
        } else {
            i += 1;
        }
    }
    out
}

fn seed_of(opts: &HashMap<String, String>) -> u64 {
    opts.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn cmd_campaign(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("campaign needs --out <file>")?;
    let seed = seed_of(opts);
    let cfg = match opts.get("scan").map(String::as_str) {
        Some("azimuth") => CampaignConfig::paper_azimuth_scan(),
        Some("3d") | None => CampaignConfig::paper_3d_scan(),
        Some("coarse") => CampaignConfig::coarse(),
        Some(other) => return Err(format!("unknown scan `{other}`")),
    };
    eprintln!(
        "measuring 34 sectors over a {}x{} grid ({} sweeps/position)…",
        cfg.grid.az.len(),
        cfg.grid.el.len(),
        cfg.sweeps_per_position
    );
    let link = Link::new(Environment::anechoic(3.0));
    let mut dut = Device::talon(seed);
    let fixed = Device::talon(seed + 1);
    let mut campaign = Campaign::new(cfg, seed);
    let mut rng = sub_rng(seed, "cli-campaign");
    let patterns = campaign.measure_tx_patterns(&mut rng, &link, &mut dut, &fixed);
    patterns
        .save(Path::new(out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {} sector patterns to {out}", patterns.len());
    Ok(())
}

fn scenario_of(opts: &HashMap<String, String>, seed: u64) -> Result<EvalScenario, String> {
    let fidelity = if opts.contains_key("paper") {
        Fidelity::Paper
    } else {
        Fidelity::Fast
    };
    match opts.get("scenario").map(String::as_str) {
        Some("lab") => Ok(EvalScenario::lab(fidelity, seed)),
        Some("conference") | None => Ok(EvalScenario::conference_room(fidelity, seed)),
        Some(other) => Err(format!("unknown scenario `{other}`")),
    }
}

fn cmd_record(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("record needs --out <file>")?;
    let seed = seed_of(opts);
    let mut scenario = scenario_of(opts, seed)?;
    eprintln!(
        "recording {} positions x {} sweeps in {}…",
        scenario.eval_grid.len(),
        scenario.sweeps_per_position,
        scenario.name
    );
    let data = scenario.record(seed);
    eval::dataset_io::save(&data, Path::new(out)).map_err(|e| format!("writing {out}: {e}"))?;
    if let Some(pat_out) = opts.get("patterns-out") {
        scenario
            .patterns
            .save(Path::new(pat_out))
            .map_err(|e| format!("writing {pat_out}: {e}"))?;
        eprintln!("wrote matching pattern store to {pat_out}");
    }
    eprintln!("wrote dataset ({} positions) to {out}", data.positions.len());
    Ok(())
}

fn cmd_analyze(opts: &HashMap<String, String>) -> Result<(), String> {
    let dataset_path = opts.get("dataset").ok_or("analyze needs --dataset <file>")?;
    let patterns_path = opts.get("patterns").ok_or("analyze needs --patterns <file>")?;
    let seed = seed_of(opts);
    let data = eval::dataset_io::load(Path::new(dataset_path))
        .map_err(|e| format!("reading {dataset_path}: {e}"))?
        .map_err(|e| format!("parsing {dataset_path}: {e}"))?;
    let patterns = SectorPatterns::load(Path::new(patterns_path))
        .map_err(|e| format!("reading {patterns_path}: {e}"))?
        .map_err(|e| format!("parsing {patterns_path}: {e}"))?;
    let probes: Vec<usize> = match opts.get("probes") {
        Some(spec) => spec
            .split(',')
            .map(|t| t.trim().parse().map_err(|_| format!("bad probe count `{t}`")))
            .collect::<Result<_, _>>()?,
        None => vec![6, 10, 14, 20, 34],
    };
    let stab = eval::stability::selection_stability(&data, &patterns, &probes, seed);
    let loss = eval::snr_loss::snr_loss(&data, &patterns, &probes, seed);
    let rows: Vec<Vec<String>> = stab
        .css
        .iter()
        .zip(&loss.css)
        .map(|(&(m, s), &(_, l))| {
            vec![
                m.to_string(),
                format!("{s:.3}"),
                format!("{:.3}", stab.ssw_stability),
                format!("{l:.2}"),
                format!("{:.2}", loss.ssw_loss_db),
            ]
        })
        .collect();
    println!(
        "{}",
        eval::ascii::table(
            &["M", "CSS stability", "SSW stability", "CSS loss dB", "SSW loss dB"],
            &rows
        )
    );
    Ok(())
}

fn cmd_sls(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed = seed_of(opts);
    let yaw: f64 = opts
        .get("yaw")
        .map(|s| s.parse().map_err(|_| "bad --yaw"))
        .transpose()?
        .unwrap_or(-25.0);
    let probes: usize = opts
        .get("probes")
        .map(|s| s.parse().map_err(|_| "bad --probes"))
        .transpose()?
        .unwrap_or(14);
    let scenario = scenario_of(opts, seed)?;
    let mut dut = scenario.dut.clone();
    dut.orientation = Orientation::new(yaw, 0.0);
    let runner = SlsRunner::new(&scenario.link, &dut, &scenario.fixed);
    let mut rng = sub_rng(seed, "cli-sls");
    let outcome = match opts.get("policy").map(String::as_str) {
        Some("ssw") | None => runner.run(&mut rng, &mut MaxSnrPolicy, &mut MaxSnrPolicy),
        Some("css") => {
            struct ProbeOnly<'a>(&'a mut CompressiveSelection);
            impl FeedbackPolicy for ProbeOnly<'_> {
                fn probe_sectors(
                    &mut self,
                    full: &[talon_array::SectorId],
                ) -> Vec<talon_array::SectorId> {
                    self.0.probe_sectors(full)
                }
                fn select(
                    &mut self,
                    readings: &[talon_channel::SweepReading],
                ) -> Option<talon_array::SectorId> {
                    MaxSnrPolicy.select(readings)
                }
            }
            let mut dut_side = CompressiveSelection::new(
                scenario.patterns.clone(),
                CssConfig {
                    num_probes: probes,
                    ..CssConfig::paper_default()
                },
                seed,
            );
            let mut peer_side = CompressiveSelection::new(
                scenario.patterns.clone(),
                CssConfig {
                    num_probes: probes,
                    ..CssConfig::paper_default()
                },
                seed + 1,
            );
            runner.run(&mut rng, &mut ProbeOnly(&mut dut_side), &mut peer_side)
        }
        Some(other) => return Err(format!("unknown policy `{other}`")),
    };
    let rxw = scenario.fixed.codebook.rx_sector().weights.clone();
    let snr = outcome
        .initiator_tx_sector
        .map(|s| scenario.link.true_snr_db(&dut, s, &scenario.fixed, &rxw));
    println!(
        "selected sector {:?} in {:.3} ms ({} probes); true SNR {:.1} dB",
        outcome.initiator_tx_sector.map(|s| s.raw()),
        outcome.duration.as_ms(),
        outcome.iss_readings.len(),
        snr.unwrap_or(f64::NAN),
    );
    Ok(())
}

fn cmd_brd(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = opts.get("check") {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let cb = talon_array::brd::from_brd(&bytes).map_err(|e| format!("parsing {path}: {e}"))?;
        println!(
            "{path}: valid board file, {} sectors ({} transmit)",
            cb.sectors().len(),
            cb.num_tx_sectors()
        );
        return Ok(());
    }
    let out = opts.get("out").ok_or("brd needs --out <file> or --check <file>")?;
    let seed = seed_of(opts);
    let device = Device::talon(seed);
    let bytes = talon_array::brd::to_brd(&device.codebook);
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} bytes ({} sectors) to {out}", bytes.len(), device.codebook.sectors().len());
    Ok(())
}
