//! Umbrella crate re-exporting the workspace members for examples and
//! integration tests. See the individual crates for documentation.
pub use chamber;
pub use css;
pub use eval;
pub use geom;
pub use mac80211ad;
pub use netsim;
pub use talon_array;
pub use talon_channel;
pub use wil6210;
